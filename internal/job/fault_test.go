package job

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"clonos/internal/audit"
	"clonos/internal/faultinject"
	"clonos/internal/kafkasim"
	"clonos/internal/obs"
)

// scheduleFlag replays one crash schedule by hand:
//
//	go test ./internal/job -run TestCrashSchedule -args -schedule='kill=task/loop@v2[0]#60;kill=recovery/rebind@v2[0]'
//
// The schedule string is exactly what a failing sweep subtest logs, so a
// sweep failure shrinks to a one-line reproducer.
var scheduleFlag = flag.String("schedule", "", "crash schedule to replay in TestCrashSchedule")

// faultUnaligned reports whether the whole sweep is forced through
// unaligned checkpointing (CLONOS_FAULT_UNALIGNED=1, the CI fault-sweep
// job's second leg). Schedules whose points require gated alignment are
// skipped in that leg — see alignedOnlySchedule.
func faultUnaligned() bool { return os.Getenv("CLONOS_FAULT_UNALIGNED") == "1" }

// alignedOnlySchedule reports whether sched names a crash point that is
// structurally unreachable when unaligned checkpointing is armed: with no
// channel ever gated, the blocked-alignment window does not exist, and
// multi-input alignments convert to capture before their last barrier.
func alignedOnlySchedule(sched faultinject.Schedule) bool {
	for _, k := range sched.Kills {
		if k.Point == faultinject.PointAlignBlocked || k.Point == faultinject.PointAlignComplete {
			return true
		}
	}
	return false
}

// crashVerdict is the outcome of one schedule-driven run.
type crashVerdict struct {
	finished bool
	wedged   bool
	fired    []faultinject.Fired
	unfired  []faultinject.Kill
}

// waitOutcome waits for the job to finish, detecting wedges through the
// stall watchdog rather than a bare wall-clock deadline: the run is
// declared wedged when the most recent runtime event is a watchdog stall
// and nothing else has been recorded for several stall deadlines — i.e.
// the watchdog saw progress die and it never came back. The hard backstop
// only catches wedges the watchdog structurally cannot see (e.g. every
// watched task finished while recovery hangs).
func waitOutcome(r *Runtime, backstop time.Duration) (finished, wedged bool) {
	grace := 3 * r.cfg.StallDeadline
	hard := time.NewTimer(backstop)
	defer hard.Stop()
	for {
		ch := r.progressCh()
		evs := r.Events()
		if len(evs) > 0 {
			last := evs[len(evs)-1]
			switch last.Kind {
			case EventTaskStall, EventAlignmentStall, EventEpochStall:
				if time.Since(last.Time) > grace {
					// A run that finished while its last stall aged out is
					// finished, not wedged.
					select {
					case <-r.allDone:
						return true, false
					default:
						return false, true
					}
				}
			}
		}
		poll := time.NewTimer(r.cfg.StallDeadline)
		select {
		case <-r.allDone:
			poll.Stop()
			return true, false
		case <-hard.C:
			poll.Stop()
			return false, true
		case <-ch: // new event or checkpoint: re-evaluate
		case <-poll.C: // no events: re-age the last stall
		}
		poll.Stop()
	}
}

// artifactDir is where failing schedules park their flight-recorder
// traces; kept outside the repo tree.
func artifactDir() string {
	return filepath.Join(os.TempDir(), "clonos-fault-artifacts")
}

func sanitizeSchedule(s string) string {
	repl := strings.NewReplacer("/", "_", "@", "-", "#", ".", "->", "~", ";", "+", "kill=", "", "[", "", "]", "", "*", "any")
	return repl.Replace(s)
}

// writeFailureArtifact persists the schedule and the flight-recorder
// JSONL for a failing run and logs the one-line reproduction command.
// For wedges, stacks holds an all-goroutine dump captured while the job
// was still stuck — the parked goroutine is usually the whole diagnosis.
func writeFailureArtifact(t *testing.T, sched faultinject.Schedule, trace, stacks []byte) {
	t.Helper()
	dir := artifactDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("cannot create artifact dir: %v", err)
		return
	}
	base := filepath.Join(dir, sanitizeSchedule(sched.String()))
	if err := os.WriteFile(base+".schedule", []byte(sched.String()+"\n"), 0o644); err != nil {
		t.Logf("cannot write schedule artifact: %v", err)
	}
	if err := os.WriteFile(base+".jsonl", trace, 0o644); err != nil {
		t.Logf("cannot write trace artifact: %v", err)
	}
	if len(stacks) > 0 {
		if err := os.WriteFile(base+".stacks", stacks, 0o644); err != nil {
			t.Logf("cannot write stacks artifact: %v", err)
		}
	}
	t.Logf("failure artifacts: %s.{schedule,jsonl}", base)
	t.Logf("replay: go test ./internal/job -run TestCrashSchedule -args -schedule='%s'", sched.String())
}

// runCrashSchedule executes one schedule against a pipeline chosen by the
// schedule's point kinds (timer points need processing-time timers,
// global points need ModeGlobal) and asserts the exactly-once oracle:
// the job finishes, no task reports an error, and the sink holds exactly
// the expected aggregate. On violation it writes the failure artifact.
func runCrashSchedule(t *testing.T, sched faultinject.Schedule) crashVerdict {
	t.Helper()
	return runCrashScheduleMode(t, sched, false)
}

// runCrashScheduleMode is runCrashSchedule with an explicit unaligned
// override, for pinned regressions whose bug only exists under unaligned
// checkpoints regardless of the sweep leg's env gate.
func runCrashScheduleMode(t *testing.T, sched faultinject.Schedule, forceUnaligned bool) crashVerdict {
	t.Helper()
	const (
		n    = 2500
		keys = 7
	)
	inj := faultinject.New(sched)
	var trace bytes.Buffer
	rec := obs.NewRecorder(&trace, obs.RecorderConfig{})

	mode := ModeClonos
	if sched.HasKind(faultinject.KindGlobal) {
		mode = ModeGlobal
	}
	cfg := quickConfig(mode)
	cfg.DSD = 0 // full determinant replication: overlapping failures stay locally recoverable
	cfg.StallDeadline = time.Second
	cfg.ServiceSeed = 42 // deterministic nondeterminants: replays hit the run the schedule saw
	cfg.Faults = inj
	cfg.TraceSink = rec
	unaligned := forceUnaligned || faultUnaligned() || sched.HasKind(faultinject.KindUnaligned)
	if unaligned {
		// Schedules that target the unaligned crash points arm the mode
		// they exercise; the env gate forces every schedule through it.
		cfg.UnalignedCheckpoints = true
		// Small frames keep the ORDER unit fine-grained under the slow
		// pipeline's backpressure: with the default 8KiB buffers the whole
		// backlog packs into 2-3 full frames per channel and no capture
		// window ever brackets one, leaving unaligned/capture unreachable.
		cfg.BufferSize = 256
	}
	// The audit plane runs armed across the whole sweep: every schedule
	// doubles as a false-positive pin — a passing crash schedule must
	// produce zero violations.
	aud := audit.New()
	cfg.Audit = aud

	timerRun := sched.HasKind(faultinject.KindTimer)
	sink := kafkasim.NewSinkTopic(true)
	var topic *kafkasim.Topic
	var g *Graph
	if timerRun {
		topic = kafkasim.NewTopic("in", 1)
		g = procWindowPipeline(topic, sink)
	} else if unaligned {
		// Unaligned runs go through the slow variant so the capture
		// windows the schedule crashes in open onto a genuine backlog
		// (in-flight buffers to log), matching the matrix's
		// sustained-backpressure load rather than a drained queue.
		topic = kafkasim.NewTopic("in", 2)
		g = slowDeepPipeline(topic, sink, 2, 600*time.Microsecond)
	} else {
		topic = kafkasim.NewTopic("in", 2)
		g = deepPipeline(topic, sink, 2)
	}
	r, err := NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	gen := kafkasim.NewGenerator(topic, 5000, func(i int64) (kafkasim.Record, bool) {
		return kafkasim.Record{Key: uint64(i) % keys, Ts: i, Value: i}, i < n
	})
	gen.Start()

	finished, wedged := waitOutcome(r, 75*time.Second)
	gen.Stop()
	errs := r.Errors()
	var sums map[uint64]int64
	var total int64
	if finished {
		if timerRun {
			for _, rec := range sink.All() {
				total += rec.Value.(int64)
			}
		} else {
			sums = finalSums(sink)
		}
	}
	debug := ""
	var stacks []byte
	if !finished {
		debug = r.DebugString()
		stacks = make([]byte, 1<<20)
		stacks = stacks[:runtime.Stack(stacks, true)]
	}
	r.Stop()
	rec.Close()

	v := crashVerdict{finished: finished, wedged: wedged, fired: inj.Fired(), unfired: inj.Unfired()}
	failed := false
	if !finished {
		failed = true
		if wedged {
			t.Errorf("job wedged (watchdog saw progress stop and never resume); errors: %v\n%s", errs, debug)
		} else {
			t.Errorf("job did not finish before backstop; errors: %v\n%s", errs, debug)
		}
	} else {
		for _, e := range errs {
			failed = true
			t.Errorf("task error: %v", e)
		}
		if timerRun {
			if total != n {
				failed = true
				t.Errorf("window counts sum to %d, want %d (exactly-once violated)", total, n)
			}
		} else {
			want := expectedDeepSums(n, keys)
			for k, w := range want {
				if sums[k] != w {
					failed = true
					t.Errorf("key %d: sum %d, want %d (exactly-once violated)", k, sums[k], w)
				}
			}
			for k := range sums {
				if _, ok := want[k]; !ok {
					failed = true
					t.Errorf("unexpected key %d in sink", k)
				}
			}
		}
	}
	if n := aud.Total(); n != 0 {
		failed = true
		t.Errorf("audit plane detected %d violation(s) on this schedule: %v", n, aud.ByInvariant())
	}
	if failed {
		writeFailureArtifact(t, sched, trace.Bytes(), stacks)
	} else if len(v.unfired) > 0 {
		// Not a failure — the run finished correctly — but a sweep
		// coverage diagnostic: the schedule named a point this run never
		// reached (e.g. the job finished before the occurrence matched).
		t.Logf("unfired kills (point not reached): %v", v.unfired)
	}
	return v
}

// sweepPlan is the curated victim set for the deterministic sweep over
// the deep pipeline (src p=2 -> map p=2 -> keyed-reduce p=2 -> sink p=1):
// direct points fire on the stateful middle stage, alignment on its
// second subtask, source points on the second source partition, and the
// recovery windows re-kill the recovering middle task. The timer point
// routes to the processing-time window pipeline (vertex 1 = the window).
func sweepPlan() faultinject.SweepPlan {
	return faultinject.SweepPlan{
		Victims:   []string{"v2[0]"},
		Source:    "v0[1]",
		Align:     "v2[1]",
		Timer:     "v1[0]",
		Recovery:  "v2[0]",
		PrimeSkip: 60,
		StepSkip:  2,
	}
}

// TestFaultSweep enumerates every registered crash point — including the
// second-failure-during-recovery windows — and runs each schedule to the
// exactly-once oracle. A failing subtest logs its schedule string and
// flight-recorder artifact; the schedule replays via TestCrashSchedule.
func TestFaultSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fault sweep is long; skipped in -short")
	}
	schedules := faultinject.Sweep(sweepPlan())
	if len(schedules) < 20 {
		t.Fatalf("sweep enumerates %d schedules, want >= 20", len(schedules))
	}
	firedPoints := make(map[string]bool)
	for _, sched := range schedules {
		sched := sched
		if faultUnaligned() && alignedOnlySchedule(sched) {
			continue
		}
		t.Run(sanitizeSchedule(sched.String()), func(t *testing.T) {
			v := runCrashSchedule(t, sched)
			for _, f := range v.fired {
				firedPoints[f.Kill.Point] = true
			}
		})
	}
	// The sweep only proves something if the points actually fired: every
	// registered point must have gone off in at least one schedule.
	for _, p := range faultinject.Points() {
		if faultUnaligned() &&
			(p.Name == faultinject.PointAlignBlocked || p.Name == faultinject.PointAlignComplete) {
			continue // unreachable with every schedule forced unaligned
		}
		if !firedPoints[p.Name] {
			t.Errorf("crash point %q never fired in any sweep schedule", p.Name)
		}
	}
}

// TestFaultFuzz runs a handful of seeded pseudo-random schedules. The
// generator is deterministic (same seed, byte-identical schedules —
// asserted in the faultinject unit tests), so a failure here is as
// replayable as a sweep failure.
func TestFaultFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fault fuzz is long; skipped in -short")
	}
	plan := sweepPlan()
	plan.Victims = []string{"v1[0]", "v2[0]", "v3[0]"}
	for _, sched := range faultinject.Fuzz(1, 6, plan) {
		sched := sched
		t.Run(sanitizeSchedule(sched.String()), func(t *testing.T) {
			runCrashSchedule(t, sched)
		})
	}
}

// TestCrashSchedule replays a schedule passed via -args -schedule=...;
// it is the reproduction entry point printed by failing sweep subtests.
func TestCrashSchedule(t *testing.T) {
	if *scheduleFlag == "" {
		t.Skip("no -schedule given")
	}
	sched, err := faultinject.Parse(*scheduleFlag)
	if err != nil {
		t.Fatalf("bad -schedule: %v", err)
	}
	v := runCrashSchedule(t, sched)
	t.Logf("finished=%v wedged=%v fired=%v unfired=%v", v.finished, v.wedged, v.fired, v.unfired)
}

// TestCrashScheduleRegressions pins schedules that once exposed real
// bugs, so the fixes cannot silently regress. Each entry documents the
// bug its schedule reproduced.
func TestCrashScheduleRegressions(t *testing.T) {
	if testing.Short() {
		t.Skip("regression schedules are long; skipped in -short")
	}
	regressions := []struct {
		name     string
		schedule string
		// unaligned forces unaligned checkpoints: the pinned bug only
		// exists on the unaligned path, so the pin must not depend on the
		// sweep leg's env gate to arm it.
		unaligned bool
		bug       string
	}{
		{
			name:     "crash-before-first-checkpoint-loses-pre-barrier-buffers",
			schedule: "kill=task/loop@v2[0]",
			bug: "outChannels started at epoch 0 instead of 1, so buffers " +
				"dispatched before the first barrier carried epoch-0 labels; " +
				"a replay request for epoch 1 (failure before the first " +
				"completed checkpoint) skipped the whole pre-barrier prefix " +
				"via FirstSeqOfEpoch and the replacement silently lost it",
		},
		{
			name:     "replacement-dies-before-attach",
			schedule: "kill=task/loop@v2[0]#60;kill=recovery/network-reconfigured@v2[0]",
			bug: "a replacement crashing after its fresh endpoints were installed " +
				"but before it started left those endpoints open; surviving upstream " +
				"pushers parked forever on the abandoned flow-control conds",
		},
		{
			name:     "replacement-dies-before-start",
			schedule: "kill=task/loop@v2[0]#60;kill=recovery/pre-start@v2[0]",
			bug: "start() on an already-crashed replacement launched threads for a " +
				"dead task and leaked its timer thread; shutdown then hung on done",
		},
		{
			name:     "upstream-dies-serving-replay",
			schedule: "kill=task/loop@v2[0]#60;kill=channel/serve-replay@*",
			bug: "two bugs. (1) the replay-retry path busy-waited on a 2ms sleep " +
				"with no abort: a gen-fenced dead incarnation's server spun forever " +
				"instead of parking on the retry signal and exiting via task abort. " +
				"(2) when the upstream had already FINISHED before dying mid-replay, " +
				"the failure detector skipped it (finished tasks were exempt), so " +
				"the half-served replay was orphaned forever and the recovering " +
				"downstream wedged waiting for data no one would ever re-send",
		},
		{
			name:      "global-restart-skips-mid-batch-source-backlog",
			schedule:  "kill=task/loop@v2[0]#60;kill=global/post-rebuild@v2[0]",
			unaligned: true, // needs the backpressured pipeline: the batch is drained otherwise
			bug: "KafkaSource.Poll advances its offsets for the whole polled " +
				"batch, but the task emits the batch one element at a time and " +
				"services checkpoint triggers in between: a barrier arriving " +
				"mid-batch snapshotted offsets already past the unemitted tail, " +
				"which then flowed in the NEXT epoch. A restore from that " +
				"checkpoint resumed at the post-batch offsets and silently " +
				"skipped the tail — up to BatchMax records lost per source " +
				"subtask per restart. Latent until the backpressured sweep: " +
				"with a drained queue the batch is empty whenever a trigger " +
				"arrives. Fixed by persisting the unemitted tail in the " +
				"snapshot (TaskSnapshot.SourceBacklog) and re-emitting it on " +
				"restore before polling again",
		},
		{
			name:      "unaligned-preload-replays-stale-latency-markers",
			schedule:  "kill=task/loop@v2[0]#60;kill=channel/serve-replay@*",
			unaligned: true,
			bug: "only under unaligned checkpoints: restore preloads captured " +
				"in-flight buffers straight into the gate, bypassing the " +
				"endpoint accept path — so the audit plane's OnDeliver rewind " +
				"detection never saw the channel rewind, and marker stamps " +
				"inside the preloaded window tripped a false " +
				"latency-marker-reorder violation against the pre-crash floor. " +
				"Fixed by notifying the auditor at preload (OnPreload) so the " +
				"marker floor re-seeds exactly as for a re-delivered seq",
		},
		{
			name:     "second-kill-delays-checkpoint-into-end-of-input",
			schedule: "kill=task/loop@v2[0]#20;kill=task/loop@v2[0]#31",
			bug: "an EOS arriving on a channel MID-alignment set eosSeen but never " +
				"completed the pending alignment: the double recovery delayed the " +
				"checkpoint into the end of the bounded input, a source exited " +
				"between the coordinator's trigger and its barrier, and the " +
				"downstream waited forever for a barrier that would never come " +
				"with its other channels gated",
		},
	}
	for _, reg := range regressions {
		reg := reg
		t.Run(reg.name, func(t *testing.T) {
			sched, err := faultinject.Parse(reg.schedule)
			if err != nil {
				t.Fatalf("bad pinned schedule: %v", err)
			}
			if v := runCrashScheduleMode(t, sched, reg.unaligned); !v.finished {
				t.Logf("regressed bug: %s", reg.bug)
			}
		})
	}
}
