package job

import (
	"testing"
	"time"

	"clonos/internal/kafkasim"
	"clonos/internal/operator"
	"clonos/internal/statestore"
	"clonos/internal/types"
)

// fillTopic loads n records with key i%keys and ts = base+i into a topic.
func fillTopic(topic *kafkasim.Topic, n int, keys uint64) {
	base := time.Now().UnixMilli()
	for i := 0; i < n; i++ {
		topic.Append(kafkasim.Record{Key: uint64(i) % keys, Ts: base + int64(i), Value: int64(i)})
	}
	topic.Close()
}

// buildLinear builds source(p) -> double(p) -> sink(1) over a topic.
func buildLinear(topic *kafkasim.Topic, sink *kafkasim.SinkTopic, p int) *Graph {
	g := NewGraph()
	src := g.AddVertex("src", p, &operator.KafkaSource{SourceName: "kafka", Topic: topic, WatermarkEvery: 10})
	double := g.AddVertex("double", p, nil, operator.Map("double", func(ctx operator.Context, e types.Element) (any, bool, error) {
		return e.Value.(int64) * 2, true, nil
	}))
	sinkV := g.AddVertex("sink", 1, nil, operator.NewKafkaSink("sink", sink))
	g.Connect(src, double, PartitionHash, nil, nil)
	g.Connect(double, sinkV, PartitionHash, nil, nil)
	return g
}

func quickConfig(mode Mode) Config {
	cfg := DefaultConfig()
	cfg.Mode = mode
	cfg.CheckpointInterval = 150 * time.Millisecond
	cfg.HeartbeatTimeout = 200 * time.Millisecond
	cfg.LogPoolBuffers = 128
	return cfg
}

func runToCompletion(t *testing.T, g *Graph, cfg Config, timeout time.Duration) *Runtime {
	t.Helper()
	r, err := NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	if !r.WaitFinished(timeout) {
		for _, e := range r.Errors() {
			t.Logf("task error: %v", e)
		}
		t.Fatal("job did not finish")
	}
	return r
}

func sumSink(sink *kafkasim.SinkTopic) (count int, sum int64) {
	for _, rec := range sink.All() {
		count++
		sum += rec.Value.(int64)
	}
	return count, sum
}

func TestLinearPipelineCompletes(t *testing.T) {
	const n = 500
	topic := kafkasim.NewTopic("in", 2)
	sink := kafkasim.NewSinkTopic(true)
	fillTopic(topic, n, 7)
	g := buildLinear(topic, sink, 2)
	runToCompletion(t, g, quickConfig(ModeClonos), 30*time.Second)

	count, sum := sumSink(sink)
	if count != n {
		t.Fatalf("sink has %d records, want %d", count, n)
	}
	want := int64(n*(n-1)) / 2 * 2
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestLinearPipelineGlobalMode(t *testing.T) {
	const n = 400
	topic := kafkasim.NewTopic("in", 2)
	sink := kafkasim.NewSinkTopic(true)
	fillTopic(topic, n, 5)
	g := buildLinear(topic, sink, 2)
	runToCompletion(t, g, quickConfig(ModeGlobal), 30*time.Second)
	if count, _ := sumSink(sink); count != n {
		t.Fatalf("sink has %d records, want %d", count, n)
	}
}

func TestCheckpointsComplete(t *testing.T) {
	topic := kafkasim.NewTopic("in", 1)
	sink := kafkasim.NewSinkTopic(true)
	g := buildLinear(topic, sink, 1)
	cfg := quickConfig(ModeClonos)
	r, err := NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	// Keep the job alive by trickling data.
	gen := kafkasim.NewGenerator(topic, 2000, func(i int64) (kafkasim.Record, bool) {
		return kafkasim.Record{Key: uint64(i % 3), Ts: time.Now().UnixMilli(), Value: i}, i < 5000
	})
	gen.Start()
	defer gen.Stop()

	if !r.WaitForCheckpoint(3, 10*time.Second) {
		t.Fatalf("only %d checkpoints completed; errors: %v", r.LatestCompletedCheckpoint(), r.Errors())
	}
}

// windowPipeline: source -> tumbling event-time count per key -> sink.
func windowPipeline(topic *kafkasim.Topic, sink *kafkasim.SinkTopic, p int) *Graph {
	g := NewGraph()
	src := g.AddVertex("src", p, &operator.KafkaSource{SourceName: "kafka", Topic: topic, WatermarkEvery: 10})
	win := g.AddVertex("win", p, nil, operator.Window("count", operator.WindowSpec{Kind: operator.TumblingEventTime, Size: 100}, operator.Count(), false))
	sinkV := g.AddVertex("sink", 1, nil, operator.NewKafkaSink("sink", sink))
	g.Connect(src, win, PartitionHash, nil, nil)
	g.Connect(win, sinkV, PartitionHash, nil, nil)
	return g
}

func TestTumblingWindowPipeline(t *testing.T) {
	topic := kafkasim.NewTopic("in", 1)
	sink := kafkasim.NewSinkTopic(true)
	// 10 windows x 100 records with deterministic event times.
	for i := 0; i < 1000; i++ {
		topic.Append(kafkasim.Record{Key: uint64(i % 4), Ts: int64(i), Value: int64(i)})
	}
	topic.Close()
	g := windowPipeline(topic, sink, 2)
	runToCompletion(t, g, quickConfig(ModeClonos), 30*time.Second)

	var total int64
	for _, rec := range sink.All() {
		total += rec.Value.(int64)
	}
	if total != 1000 {
		t.Fatalf("window counts sum to %d, want 1000", total)
	}
}

func TestGraphValidate(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("a", 2, &operator.KafkaSource{SourceName: "s", Topic: kafkasim.NewTopic("x", 1)})
	b := g.AddVertex("b", 3, nil, operator.Map("m", func(ctx operator.Context, e types.Element) (any, bool, error) { return e.Value, true, nil }))
	g.Connect(a, b, PartitionForward, nil, nil)
	if err := g.Validate(); err == nil {
		t.Fatal("forward edge with mismatched parallelism accepted")
	}
}

func TestGraphDepth(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("a", 1, &operator.KafkaSource{SourceName: "s", Topic: kafkasim.NewTopic("x", 1)})
	b := g.AddVertex("b", 1, nil)
	c := g.AddVertex("c", 1, nil)
	g.Connect(a, b, PartitionHash, nil, nil)
	g.Connect(b, c, PartitionHash, nil, nil)
	if d := g.Depth(); d != 2 {
		t.Fatalf("depth = %d, want 2", d)
	}
}

func TestGraphDownstream(t *testing.T) {
	g := NewGraph()
	a := g.AddVertex("a", 1, &operator.KafkaSource{SourceName: "s", Topic: kafkasim.NewTopic("x", 1)})
	b := g.AddVertex("b", 2, nil)
	c := g.AddVertex("c", 1, nil)
	g.Connect(a, b, PartitionHash, nil, nil)
	g.Connect(b, c, PartitionHash, nil, nil)
	one := g.Downstream(types.TaskID{Vertex: a.ID}, 1)
	if len(one) != 2 {
		t.Fatalf("1 hop = %v", one)
	}
	two := g.Downstream(types.TaskID{Vertex: a.ID}, 2)
	if len(two) != 3 {
		t.Fatalf("2 hops = %v", two)
	}
}

// statefulValue is a state value used by the failure tests.
type statefulValue struct{ Total int64 }

func init() { statestore.Register(statefulValue{}) }

// keySumPipeline: source -> keyed running sum -> sink; the sum operator
// holds state that must survive failures exactly-once.
func keySumPipeline(topic *kafkasim.Topic, sink *kafkasim.SinkTopic, p int) *Graph {
	g := NewGraph()
	src := g.AddVertex("src", p, &operator.KafkaSource{SourceName: "kafka", Topic: topic, WatermarkEvery: 25})
	sum := g.AddVertex("sum", p, nil, operator.KeyedReduce("sum", func(ctx operator.Context, acc any, e types.Element) (any, error) {
		s, _ := acc.(statefulValue)
		s.Total += e.Value.(int64)
		return s, nil
	}))
	sinkV := g.AddVertex("sink", 1, nil, operator.NewKafkaSink("sink", sink))
	g.Connect(src, sum, PartitionHash, nil, nil)
	g.Connect(sum, sinkV, PartitionHash, nil, nil)
	return g
}

// finalSums extracts, per key, the last emitted running sum.
func finalSums(sink *kafkasim.SinkTopic) map[uint64]int64 {
	out := make(map[uint64]int64)
	for _, rec := range sink.All() {
		out[rec.Key] = rec.Value.(statefulValue).Total
	}
	return out
}

func expectedSums(n int, keys uint64) map[uint64]int64 {
	out := make(map[uint64]int64)
	for i := 0; i < n; i++ {
		out[uint64(i)%keys] += int64(i)
	}
	return out
}

func checkSums(t *testing.T, got, want map[uint64]int64, context string) {
	t.Helper()
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s: key %d sum = %d, want %d", context, k, got[k], w)
		}
	}
}

func TestLocalRecoverySingleFailure(t *testing.T) {
	const n = 4000
	topic := kafkasim.NewTopic("in", 2)
	sink := kafkasim.NewSinkTopic(true)
	g := keySumPipeline(topic, sink, 2)
	cfg := quickConfig(ModeClonos)
	r, err := NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	gen := kafkasim.NewGenerator(topic, 4000, func(i int64) (kafkasim.Record, bool) {
		return kafkasim.Record{Key: uint64(i) % 5, Ts: i, Value: i}, i < n
	})
	gen.Start()
	defer gen.Stop()

	// Let at least one checkpoint complete, then kill a middle task.
	if !r.WaitForCheckpoint(1, 30*time.Second) {
		t.Fatalf("no checkpoint completed: %v", r.Errors())
	}
	victim := types.TaskID{Vertex: 1, Subtask: 0}
	if err := r.InjectFailure(victim); err != nil {
		t.Fatal(err)
	}

	if !r.WaitFinished(60 * time.Second) {
		t.Fatalf("job did not finish after recovery; errors: %v, events: %v", r.Errors(), r.Events())
	}
	for _, e := range r.Errors() {
		t.Errorf("task error: %v", e)
	}
	// Exactly-once: final per-key sums match a failure-free run.
	checkSums(t, finalSums(sink), expectedSums(n, 5), "after local recovery")
	// The recovery must have used the standby path, not a global restart.
	for _, ev := range r.Events() {
		if ev.Kind == EventGlobalRestart {
			t.Fatalf("unexpected global restart: %v", ev)
		}
	}
}
