package job

import (
	"math"
	"testing"
	"time"

	"clonos/internal/kafkasim"
	"clonos/internal/obs"
	"clonos/internal/types"
)

// sinkTask builds an unstarted runtime plus a manually constructed sink
// task (two input channels) so barrier handling can be driven directly
// from the test, without network or goroutines.
func sinkTask(t *testing.T, cfg Config) (*Runtime, *Task) {
	t.Helper()
	topic := kafkasim.NewTopic("in", 2)
	sink := kafkasim.NewSinkTopic(true)
	g := buildLinear(topic, sink, 2)
	r, err := NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tk := newTask(r, g.Vertices[2], 0)
	tk.attachNetwork(true)
	if len(tk.inIDs) != 2 {
		t.Fatalf("sink task has %d input channels, want 2", len(tk.inIDs))
	}
	return r, tk
}

// countEvents returns how many recorded runtime events match the kind.
func countEvents(r *Runtime, kind EventKind) int {
	n := 0
	for _, ev := range r.Events() {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// TestAlignmentSupersededReleasesChannels exercises the barrier-supersede
// path: a newer barrier cancelling a pending alignment must release the
// blocked channels, must not record an alignment-time sample for the
// abandoned epoch, and must still record the genuine blocked-channel
// time.
func TestAlignmentSupersededReleasesChannels(t *testing.T) {
	r, tk := sinkTask(t, quickConfig(ModeClonos))

	// First barrier of cp 1 on channel 0: alignment starts, channel 0
	// blocks.
	tk.handleBarrier(0, 1)
	if !tk.aligning || tk.alignCp != 1 {
		t.Fatalf("aligning=%v alignCp=%d after first barrier, want aligning on cp 1", tk.aligning, tk.alignCp)
	}
	if got := tk.gate.BlockedChannels(); got != 1 {
		t.Fatalf("blocked channels = %d, want 1", got)
	}
	if got := tk.alignStartNs.Load(); got == 0 {
		t.Error("alignStartNs not published for the watchdog")
	}

	// A barrier of cp 2 arrives on the same channel before cp 1 ever
	// completed: cp 1 was aborted upstream, so its alignment is abandoned
	// and channel 0 re-blocks for cp 2.
	tk.handleBarrier(0, 2)
	if !tk.aligning || tk.alignCp != 2 {
		t.Fatalf("aligning=%v alignCp=%d after superseding barrier, want aligning on cp 2", tk.aligning, tk.alignCp)
	}
	if got := countEvents(r, EventAlignSuperseded); got != 1 {
		t.Errorf("alignment-superseded events = %d, want 1", got)
	}
	if got := tk.metrics.align.Count(); got != 0 {
		t.Errorf("align histogram count = %d after abandoned alignment, want 0 (never completed)", got)
	}
	if got := tk.metrics.alignBlocked.Count(); got != 1 {
		t.Errorf("blocked-channel histogram count = %d, want 1 (cp 1's genuine blocked time)", got)
	}
	if got := tk.gate.BlockedChannels(); got != 1 {
		t.Errorf("blocked channels = %d after supersede, want 1 (re-blocked for cp 2)", got)
	}
	if got := tk.alignCpShadow.Load(); got != 2 {
		t.Errorf("alignCpShadow = %d, want 2", got)
	}

	// The second channel's cp-2 barrier completes the alignment: one
	// align sample, channels released, watchdog shadows cleared.
	tk.handleBarrier(1, 2)
	if tk.aligning {
		t.Error("still aligning after the last barrier")
	}
	if got := tk.metrics.align.Count(); got != 1 {
		t.Errorf("align histogram count = %d after completed alignment, want 1", got)
	}
	if got := tk.gate.BlockedChannels(); got != 0 {
		t.Errorf("blocked channels = %d after completion, want 0", got)
	}
	if got := tk.alignStartNs.Load(); got != 0 {
		t.Errorf("alignStartNs = %d after completion, want 0", got)
	}
	if got := tk.metrics.snapshots.Value(); got != 1 {
		t.Errorf("snapshots counter = %d, want 1", got)
	}
}

// TestWatchdogAlignmentStall drives the watchdog scan directly: an
// alignment pending past the deadline fires one alignment-stall event
// and counts the task as stalled until it resolves.
func TestWatchdogAlignmentStall(t *testing.T) {
	cfg := quickConfig(ModeClonos)
	cfg.StallDeadline = 50 * time.Millisecond
	r, tk := sinkTask(t, cfg)
	tk.state.Store(int32(stateRunning))
	r.tasks[tk.id] = tk

	tk.handleBarrier(0, 1) // alignment starts, never completes
	ws := newWatchdogState(time.Now())
	late := time.Now().Add(cfg.StallDeadline + time.Second)
	if got := r.scanStalls(ws, late); got != 1 {
		t.Errorf("stalled = %d, want 1 (pending alignment past deadline)", got)
	}
	if got := countEvents(r, EventAlignmentStall); got != 1 {
		t.Fatalf("alignment-stall events = %d, want 1", got)
	}
	// A second scan must not re-report the same stuck epoch.
	r.scanStalls(ws, late.Add(time.Second))
	if got := countEvents(r, EventAlignmentStall); got != 1 {
		t.Errorf("alignment-stall events after rescan = %d, want 1 (one event per stuck epoch)", got)
	}

	// Completing the alignment (plus some input progress, so the
	// no-progress detector re-arms too) clears the stall.
	tk.handleBarrier(1, 1)
	tk.offsetShadow.Store(5)
	if got := r.scanStalls(ws, late.Add(2*time.Second)); got != 0 {
		t.Errorf("stalled = %d after alignment completed, want 0", got)
	}
}

// TestWatchdogTaskStall verifies the no-progress detector: a running
// task whose watermark and offset shadows stop moving past the deadline
// fires one task-stall event, and any progress re-arms it.
func TestWatchdogTaskStall(t *testing.T) {
	cfg := quickConfig(ModeClonos)
	cfg.StallDeadline = 50 * time.Millisecond
	r, tk := sinkTask(t, cfg)
	tk.state.Store(int32(stateRunning))
	r.tasks[tk.id] = tk

	t0 := time.Now()
	ws := newWatchdogState(t0)
	// First scan baselines the shadows; no stall yet.
	if got := r.scanStalls(ws, t0); got != 0 {
		t.Errorf("stalled = %d on baseline scan, want 0", got)
	}
	late := t0.Add(cfg.StallDeadline + time.Second)
	if got := r.scanStalls(ws, late); got != 1 {
		t.Errorf("stalled = %d past deadline, want 1", got)
	}
	if got := countEvents(r, EventTaskStall); got != 1 {
		t.Fatalf("task-stall events = %d, want 1", got)
	}
	r.scanStalls(ws, late.Add(time.Second))
	if got := countEvents(r, EventTaskStall); got != 1 {
		t.Errorf("task-stall events after rescan = %d, want 1 (reported once)", got)
	}

	// Progress (an offset advance) re-arms the detector.
	tk.offsetShadow.Store(7)
	if got := r.scanStalls(ws, late.Add(2*time.Second)); got != 0 {
		t.Errorf("stalled = %d after progress, want 0", got)
	}
	// A finished task (wm = MaxInt64) never counts as stalled.
	tk.wmShadow.Store(math.MaxInt64)
	if got := r.scanStalls(ws, late.Add(time.Hour)); got != 0 {
		t.Errorf("stalled = %d for a drained task, want 0", got)
	}
}

// TestWatchdogEpochStall verifies the global checkpoint-progress check:
// no completed checkpoint past deadline + 2 intervals fires one
// epoch-stall event while tasks are active and no recovery explains the
// pause.
func TestWatchdogEpochStall(t *testing.T) {
	cfg := quickConfig(ModeClonos)
	cfg.StallDeadline = 50 * time.Millisecond
	r, tk := sinkTask(t, cfg)
	tk.state.Store(int32(stateRunning))
	r.tasks[tk.id] = tk

	t0 := time.Now()
	ws := newWatchdogState(t0)
	r.scanStalls(ws, t0.Add(time.Millisecond))
	if got := countEvents(r, EventEpochStall); got != 0 {
		t.Fatalf("epoch-stall events = %d before the deadline, want 0", got)
	}
	late := t0.Add(cfg.StallDeadline + 2*cfg.CheckpointInterval + time.Second)
	r.scanStalls(ws, late)
	if got := countEvents(r, EventEpochStall); got != 1 {
		t.Fatalf("epoch-stall events = %d past the deadline, want 1", got)
	}
	r.scanStalls(ws, late.Add(time.Second))
	if got := countEvents(r, EventEpochStall); got != 1 {
		t.Errorf("epoch-stall events after rescan = %d, want 1 (reported once)", got)
	}
	// A recovery in flight legitimately pauses checkpointing: no event.
	ws2 := newWatchdogState(t0)
	r.mu.Lock()
	r.failedSet[tk.id] = true
	r.mu.Unlock()
	r.scanStalls(ws2, late.Add(time.Hour))
	if got := countEvents(r, EventEpochStall); got != 1 {
		t.Errorf("epoch-stall events during recovery = %d, want 1 (quiesced job exempt)", got)
	}
}

// TestWatchdogBackpressureNoFalseStall drives several checkpoint epochs
// of heavy alignment — a channel legitimately gated every epoch while
// the other input keeps delivering — and verifies the watchdog stays
// quiet: channels blocked for alignment under sustained backpressure are
// not a stall as long as alignment completes and input progresses within
// the deadline. The detectors must still fire once progress genuinely
// wedges, so the quiet period is not the watchdog being blind.
func TestWatchdogBackpressureNoFalseStall(t *testing.T) {
	cfg := quickConfig(ModeClonos)
	cfg.StallDeadline = 50 * time.Millisecond
	r, tk := sinkTask(t, cfg)
	tk.state.Store(int32(stateRunning))
	r.tasks[tk.id] = tk

	ws := newWatchdogState(time.Now())
	r.scanStalls(ws, time.Now()) // baseline observation
	for cp := types.CheckpointID(1); cp <= 5; cp++ {
		tk.handleBarrier(0, cp) // channel 0 gates for alignment
		if got := tk.gate.BlockedChannels(); got != 1 {
			t.Fatalf("cp %d: blocked channels = %d, want 1", cp, got)
		}
		// The unblocked channel keeps making progress under load.
		tk.offsetShadow.Store(uint64(cp * 10))
		tk.wmShadow.Store(int64(cp) * 100)
		// Scan mid-alignment, inside the deadline: not a stall.
		if got := r.scanStalls(ws, time.Now().Add(30*time.Millisecond)); got != 0 {
			t.Fatalf("cp %d: stalled = %d while legitimately gated for alignment, want 0", cp, got)
		}
		tk.handleBarrier(1, cp) // alignment completes within the deadline
	}
	for _, kind := range []EventKind{EventTaskStall, EventAlignmentStall, EventEpochStall} {
		if got := countEvents(r, kind); got != 0 {
			t.Errorf("%s events = %d under sustained backpressure, want 0", kind, got)
		}
	}

	// Sanity: a genuinely wedged alignment (no completing barrier, no
	// input progress) past the deadline must still be detected.
	tk.handleBarrier(0, 6)
	if got := r.scanStalls(ws, time.Now().Add(cfg.StallDeadline+time.Second)); got == 0 {
		t.Error("stalled = 0 for a wedged alignment past the deadline, want > 0")
	}
	if got := countEvents(r, EventAlignmentStall); got != 1 {
		t.Errorf("alignment-stall events = %d after the genuine wedge, want 1", got)
	}
}

// captureSink records everything a tracer forwards to its sink.
type captureSink struct {
	events []obs.Event
	spans  []obs.SpanRecord
}

func (c *captureSink) OnEvent(ev obs.Event)     { c.events = append(c.events, ev) }
func (c *captureSink) OnSpan(sp obs.SpanRecord) { c.spans = append(c.spans, sp) }

// TestTracerConfigFromJobConfig verifies the runtime passes the job
// config's trace limits and sink through to its tracer.
func TestTracerConfigFromJobConfig(t *testing.T) {
	topic := kafkasim.NewTopic("in", 2)
	sink := kafkasim.NewSinkTopic(true)
	g := buildLinear(topic, sink, 2)
	cfg := quickConfig(ModeClonos)
	cfg.TraceMaxEvents = 13
	cfg.TraceMaxSpans = 7
	cap := &captureSink{}
	cfg.TraceSink = cap
	r, err := NewRuntime(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ev, sp := r.Tracer().Limits(); ev != 13 || sp != 7 {
		t.Errorf("tracer limits = (%d, %d), want (13, 7)", ev, sp)
	}
	r.recordEvent(EventTaskStall, types.TaskID{Vertex: 1, Subtask: 0}, "synthetic")
	if len(cap.events) != 1 || cap.events[0].Name != string(EventTaskStall) {
		t.Fatalf("sink saw events %+v, want one task-stall", cap.events)
	}
	if got := cap.events[0].Attrs["info"]; got != "synthetic" {
		t.Errorf("sink event info attr = %q, want %q", got, "synthetic")
	}
}
