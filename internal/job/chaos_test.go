package job

import (
	"math/rand"
	"testing"
	"time"

	"clonos/internal/kafkasim"
	"clonos/internal/types"
)

// TestChaosMonkey hammers the deep pipeline with randomized failures —
// random victims at random (sometimes overlapping) times — and checks
// the exactly-once oracle at the end. Any lost replay, double-applied
// buffer, divergent re-execution, or wedged recovery shows up as a wrong
// final sum or a hung job.
func TestChaosMonkey(t *testing.T) {
	const (
		n     = 10000
		keys  = 7
		kills = 6
	)
	for _, seed := range []int64{1, 2} {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		topic := kafkasim.NewTopic("in", 2)
		sink := kafkasim.NewSinkTopic(true)
		g := deepPipeline(topic, sink, 2)
		cfg := quickConfig(ModeClonos)
		cfg.DSD = 0 // full: survive any consecutive-failure pattern locally
		r, err := NewRuntime(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}

		gen := kafkasim.NewGenerator(topic, 5000, func(i int64) (kafkasim.Record, bool) {
			return kafkasim.Record{Key: uint64(i) % keys, Ts: i, Value: i}, i < n
		})
		gen.Start()

		if !r.WaitForCheckpoint(1, 30*time.Second) {
			t.Fatalf("seed %d: no checkpoint: %v", seed, r.Errors())
		}

		// Random victims across all vertices (0..3), random gaps —
		// sometimes bursts of concurrent kills, sometimes spaced out.
		for k := 0; k < kills; k++ {
			victim := types.TaskID{
				Vertex:  types.VertexID(rng.Intn(4)),
				Subtask: int32(rng.Intn(2)),
			}
			if victim.Vertex == 3 {
				victim.Subtask = 0 // sink parallelism 1
			}
			_ = r.InjectFailure(victim) // may hit an already-dead task: fine
			if rng.Intn(3) > 0 {
				time.Sleep(time.Duration(rng.Intn(900)) * time.Millisecond)
			}
		}

		if !r.WaitFinished(120 * time.Second) {
			t.Fatalf("seed %d: job did not finish; errors: %v", seed, r.Errors())
		}
		for _, e := range r.Errors() {
			t.Errorf("seed %d: task error: %v", seed, e)
		}
		checkSums(t, finalSums(sink), expectedDeepSums(n, keys), "chaos")
		gen.Stop()
		r.Stop()
	}
}
