package job

import (
	"fmt"
	"time"

	"clonos/internal/causal"
	"clonos/internal/checkpoint"
	"clonos/internal/faultinject"
	"clonos/internal/obs"
	"clonos/internal/operator"
	"clonos/internal/types"
)

// ExtractDeterminants serves a recovering task's determinant-log request
// (§2.2 step 3) from this task's replicated store. Thread-safe.
func (t *Task) ExtractDeterminants(origin types.TaskID, fromEpoch types.EpochID) (causal.Extracted, bool) {
	if t.causal == nil {
		return causal.Extracted{}, false
	}
	return t.causal.Replicas().Extract(origin, fromEpoch)
}

// outChannelByID locates one of the task's output channels.
func (t *Task) outChannelByID(id types.ChannelID) *outChannel {
	for _, oc := range t.allOut {
		if oc.id == id {
			return oc
		}
	}
	return nil
}

// localRecover runs the Clonos recovery protocol (§2.2) for one failed
// task:
//
//  1. activate the standby (or build a fresh replacement) with the latest
//     completed checkpoint,
//  2. retrieve the predecessor's determinant logs from surviving tasks
//     within DSD hops downstream,
//  3. reconfigure the network (fresh input endpoints),
//  4. configure sender-side deduplication from downstream endpoints,
//  5. request in-flight replay from every upstream, and
//  6. start causally guided re-execution.
//
// If determinants are needed but unavailable (an orphan per §5.3), it
// returns a non-empty reason and the caller escalates to a global
// rollback. The caller holds the runtime's restartGate read lock, so a
// concurrent global restart cannot interleave with the steps below.
func (r *Runtime) localRecover(failed types.TaskID) (escalate string) {
	r.mu.Lock()
	if r.stopped || r.restarting || !r.failedSet[failed] {
		// Stale queue entry: a global restart already replaced this task.
		r.mu.Unlock()
		if sp := r.takeRecoverySpan(failed); sp != nil {
			sp.SetAttr("aborted", "stale")
			sp.End()
		}
		return ""
	}
	vertex := r.graph.Vertices[failed.Vertex]
	old := r.tasks[failed]
	// Step 1: standby activation (preloaded state in HA mode).
	var t *Task
	var snap *checkpoint.TaskSnapshot
	if r.cfg.Standby {
		t = r.standbys[failed]
		delete(r.standbys, failed)
		snap = r.standbySnap[failed]
	}
	if t == nil {
		t = newTask(r, vertex, failed.Subtask)
	}
	// The coordinator paused (and aborted any in-flight checkpoint)
	// before this recovery was enqueued, so LatestCompleted is stable
	// here. A checkpoint may have *completed* between the failure and
	// its detection — its truncations already ran — so recovery MUST
	// restore from the latest completed checkpoint, not from a standby
	// snapshot that predates it (whose epoch's logs may be gone).
	cp := r.snaps.LatestCompleted()
	if cp > 0 && (snap == nil || snap.Checkpoint != cp) {
		if fresh, ok := r.snaps.Get(cp, failed); ok {
			snap = fresh
		}
	}
	r.mu.Unlock()

	// The detector opened a span for this failure; mark the protocol's
	// phase boundaries on it as the steps below complete.
	sp := r.takeRecoverySpan(failed)

	if old != nil {
		old.crash() // ensure threads are gone even if detection raced
		// The dead incarnation's out-channels are volatile state that
		// nothing reads again — replay is served from the replacement's
		// in-flight log — so close them here; each one owns a spiller
		// thread that otherwise outlives every recovery.
		for _, oc := range old.allOut {
			oc.close()
		}
	}
	// Fault-injection windows: each crashPoint below may kill the
	// replacement between two named protocol phases. The protocol keeps
	// executing — the job manager does not die with a standby — and the
	// detector re-detects the dead replacement by its stale heartbeat,
	// driving a fresh recovery. The steps are harmless on a crashed task.
	t.crashPoint(faultinject.PointRecoveryPreActivate)
	if snap != nil {
		if err := t.restore(snap); err != nil {
			r.reportTaskError(failed, err)
			// The half-activated replacement is abandoned — the global
			// restart that this escalation triggers builds a fresh
			// incarnation — so reap it like the dead one above: its
			// out-channels each own a spiller thread that nothing else
			// will ever close.
			t.crash()
			for _, oc := range t.allOut {
				oc.close()
			}
			sp.SetAttr("aborted", "restore-failed")
			sp.End()
			return "restore-failed"
		}
	}
	sp.Mark("standby-activated")
	t.crashPoint(faultinject.PointRecoveryActivated)

	// Step 4 (part of step 2's reconnection): sender-side dedup per
	// §5.2 — downstream survivors report how far they got. This runs
	// BEFORE determinant extraction, and each surviving endpoint is
	// first rebound to the replacement's connection generation: the
	// crashed predecessor may still have one in-flight send per channel
	// (possibly parked on the credit limit since before the crash), and
	// a stale buffer slipping in after the dedup floor is sampled — or
	// after its determinants were extracted — would leave the receiver
	// with a byte prefix the replacement cannot reproduce, silently
	// desynchronizing the element stream. Rebind fences the predecessor
	// off; sampling then extracting guarantees every deduplicated seq's
	// BUFFERSIZE determinant is covered by the extraction below.
	for _, oc := range t.allOut {
		ep := r.net.Endpoint(oc.id)
		if ep == nil || ep.Broken() {
			continue // downstream recovering too; it will request replay
		}
		lp := ep.Rebind(oc.gen)
		switch r.cfg.Guarantee {
		case ExactlyOnce:
			oc.setDedup(lp)
		default:
			// Divergent replay cannot reproduce identical buffers;
			// renumber past the receiver's view (duplicates possible —
			// at-least-once; or fresh data only — at-most-once).
			oc.forceNextSeq(lp + 1)
		}
		t.crashPoint(faultinject.PointRecoveryRebind)
	}
	t.crashPoint(faultinject.PointRecoveryDedupSampled)

	// Step 3: retrieve determinant logs from tasks within DSD hops.
	guided := false
	if t.causal != nil {
		merged := causal.NewStore()
		// §5.5: sink operators piggybacked their determinants onto the
		// external output system; retrieve them from there — a sink has
		// no downstream tasks to ask.
		for _, op := range vertex.Operators {
			rec, ok := op.(operator.ExternalRecoverable)
			if !ok {
				continue
			}
			for _, blob := range rec.RecoverDeterminants(failed.String()) {
				sets, err := causal.DecodeDelta(blob)
				if err != nil {
					r.reportTaskError(failed, err)
					continue
				}
				for _, fs := range sets {
					for key, run := range fs.Logs {
						merged.Ingest(fs.Origin, fs.Hops, key, run.Start, run.Ents)
					}
				}
			}
		}
		dsd := t.causal.DSD()
		for _, did := range r.graph.Downstream(failed, dsd) {
			r.mu.Lock()
			holder := r.tasks[did]
			holderFailed := r.failedSet[did]
			r.mu.Unlock()
			if holder == nil || holderFailed || holder.crashed.Load() {
				continue
			}
			ex, ok := holder.ExtractDeterminants(failed, t.epoch)
			if !ok {
				continue
			}
			merged.Ingest(failed, 1, causal.MainLogKey, ex.MainStart, ex.Main)
			for ch, dets := range ex.Channels {
				merged.Ingest(failed, 1, causal.ChannelLogKey(ch), ex.ChannelStarts[ch], dets)
			}
		}
		if ex, ok := merged.Extract(failed, t.epoch); ok {
			t.setRecovery(ex)
			guided = true
		} else if r.dependantsExist(t, failed) {
			// Orphans: surviving (or concurrently recovering) tasks may
			// depend on this epoch's lost events but nobody retains the
			// determinants (DSD < D with consecutive failures, §5.3
			// case 2) — fall back to a full rollback.
			r.recordEvent(EventOrphanFallback, failed, "")
			sp.SetAttr("aborted", "orphan")
			sp.End()
			return "orphan"
		}
	}
	sp.Mark("determinants-retrieved")
	t.crashPoint(faultinject.PointRecoveryDeterminants)

	// Step 2: network reconfiguration — fresh endpoints replace broken
	// ones, created closed: stale direct sends are rejected until the
	// replay request opens each endpoint at the expected first seq.
	t.attachNetwork(false)
	sp.Mark("network-reconfigured")
	t.crashPoint(faultinject.PointRecoveryNetwork)

	r.mu.Lock()
	r.tasks[failed] = t
	delete(r.failedSet, failed)
	if guided {
		r.recovering[failed] = true
	}
	// Re-deploy a fresh standby for the next failure.
	if r.cfg.Standby {
		r.standbys[failed] = newTask(r, vertex, failed.Subtask)
	}
	pending := r.pendingReplay[failed]
	delete(r.pendingReplay, failed)
	r.mu.Unlock()

	r.recordEvent(EventStandbyActivated, failed, "")
	if sp != nil {
		t.recSpan.Store(sp) // before start: the main thread finishes it
	}
	t.crashPoint(faultinject.PointRecoveryPreStart)
	t.start()

	// Steps 4-5: request in-flight replay from upstreams (or plain
	// reconnection for at-most-once gap recovery).
	for _, chID := range t.inIDs {
		r.routeUpstream(chID, t.epoch)
	}
	t.crashPoint(faultinject.PointRecoveryServeReplay)
	// Serve replay requests that were waiting for this task.
	for _, req := range pending {
		if oc := t.outChannelByID(req.channel); oc != nil {
			r.serveReplay(oc, req.fromEpoch, req.afterSeq)
		}
	}
	// Downstream tasks that are themselves recovering issued (or will
	// issue) replay requests that may have reached this task's crashed
	// predecessor; re-serve them proactively.
	for _, oc := range t.allOut {
		did := types.TaskID{Vertex: r.graph.Edges[oc.id.Edge].To.ID, Subtask: oc.id.To}
		r.mu.Lock()
		needs := r.recovering[did] || r.failedSet[did]
		r.mu.Unlock()
		if needs && r.cfg.Guarantee != AtMostOnce {
			r.serveReplay(oc, t.epoch, 0)
		}
	}
	if !guided {
		// Nothing to replay causally: the task is live immediately.
		r.onTaskLive(failed)
	}
	return ""
}

// routeUpstream delivers a replay (or reconnect) request for one input
// channel to the current owner of its upstream side, deferring it when
// that task is itself awaiting recovery.
func (r *Runtime) routeUpstream(chID types.ChannelID, fromEpoch types.EpochID) {
	up := types.TaskID{Vertex: r.graph.Edges[chID.Edge].From.ID, Subtask: chID.From}
	r.mu.Lock()
	upTask := r.tasks[up]
	upFailed := r.failedSet[up]
	if upTask != nil && upTask.crashed.Load() {
		// Crashed but not yet detected: defer until its recovery.
		upFailed = true
	}
	if upFailed || upTask == nil {
		r.pendingReplay[up] = append(r.pendingReplay[up], replayRequest{channel: chID, fromEpoch: fromEpoch})
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	oc := upTask.outChannelByID(chID)
	if oc == nil {
		return
	}
	if r.cfg.Guarantee == AtMostOnce || r.cfg.Mode != ModeClonos {
		// Gap recovery: no replay, just reconnect and accept fresh data.
		oc.resumeDirect(0)
		if ep := r.net.Endpoint(chID); ep != nil {
			ep.AcceptFrom(0)
		}
		oc.wakeReplay()
		return
	}
	r.serveReplay(oc, fromEpoch, 0)
}

// serveReplay arms an in-flight replay on an upstream channel and opens
// the receiving endpoint at the replay's first seq — in that order, so a
// stale direct send racing the request can never mis-anchor the fresh
// connection.
func (r *Runtime) serveReplay(oc *outChannel, fromEpoch types.EpochID, afterSeq uint64) {
	start, err := oc.PrepareReplay(fromEpoch, afterSeq)
	if err != nil {
		// Unserviceable replay (e.g. the epoch was truncated): the only
		// consistent way forward is a full rollback.
		r.reportTaskError(oc.task.id, err)
		go r.globalRestart("unserviceable-replay")
		return
	}
	if ep := r.net.Endpoint(oc.id); ep != nil {
		ep.AcceptFrom(start)
	}
	// Wake a replay loop parked on a previously rejected push: the
	// endpoint is open now (wake AFTER AcceptFrom, so a retry provoked by
	// this signal observes the accepting endpoint).
	oc.wakeReplay()
}

// dependantsExist reports whether recovering the task divergently (no
// determinants) could orphan someone (§5.3): some surviving process
// depends — directly or through a chain of concurrently failed tasks —
// on this epoch's lost events. A surviving downstream endpoint that
// consumed buffers of the current epoch is a direct dependant; a failed
// downstream is checked transitively using its checkpointed per-channel
// epoch-start sequence numbers.
func (r *Runtime) dependantsExist(t *Task, failed types.TaskID) bool {
	return r.epochConsumed(failed, make(map[types.TaskID]bool))
}

// epochConsumed reports whether any surviving task received output of the
// current epoch from id, following chains of failed tasks.
func (r *Runtime) epochConsumed(id types.TaskID, visited map[types.TaskID]bool) bool {
	if visited[id] {
		return false
	}
	visited[id] = true
	v := r.graph.Vertices[id.Vertex]
	var snap *checkpoint.TaskSnapshot
	if cp := r.snaps.LatestCompleted(); cp > 0 {
		snap, _ = r.snaps.Get(cp, id)
	}
	for _, e := range v.OutEdges {
		for to := int32(0); to < int32(e.To.Parallelism); to++ {
			ch := channelID(e, id.Subtask, to)
			start := uint64(1)
			if snap != nil {
				if s, ok := snap.NextSeq[ch]; ok && s > 0 {
					start = s
				}
			}
			did := types.TaskID{Vertex: e.To.ID, Subtask: to}
			r.mu.Lock()
			dt := r.tasks[did]
			downGone := r.failedSet[did] || r.recovering[did] || (dt != nil && dt.crashed.Load())
			r.mu.Unlock()
			if downGone {
				// The direct consumer is gone too; anyone observing its
				// epoch output observed (transitively) ours.
				if r.epochConsumed(did, visited) {
					return true
				}
				continue
			}
			ep := r.net.Endpoint(ch)
			if ep != nil && !ep.Broken() && ep.LastPushed() >= start {
				return true
			}
		}
	}
	return false
}

// globalRestart is the baseline recovery (and Clonos' §5.3 fallback):
// tear down every task and restart the whole topology from the latest
// completed checkpoint. It holds the restartGate write lock for its
// duration, so it serializes against in-flight local recoveries (which
// hold the read side) — in particular the asynchronous escalation from
// an unserviceable replay cannot tear down a task that localRecover is
// concurrently installing.
func (r *Runtime) globalRestart(reason string) {
	r.restartGate.Lock()
	defer r.restartGate.Unlock()
	r.mu.Lock()
	if r.stopped || r.restarting {
		r.mu.Unlock()
		return
	}
	r.restarting = true
	oldTasks := make([]*Task, 0, len(r.tasks))
	for _, t := range r.tasks {
		oldTasks = append(oldTasks, t)
	}
	oldStandbys := make([]*Task, 0, len(r.standbys))
	for _, t := range r.standbys {
		oldStandbys = append(oldStandbys, t)
	}
	r.mu.Unlock()

	r.obs.Counter("clonos_global_restarts_total", "Full-topology rollback restarts.", obs.Labels{"reason": reason}).Inc()
	rsp := r.tracer.StartSpan("global-restart", map[string]string{"reason": reason})
	defer rsp.End()
	r.abortRecoverySpans("global-restart")

	r.recordEvent(EventGlobalRestart, types.TaskID{}, reason)
	r.coord.Pause()
	r.coord.Reset()
	for _, t := range oldTasks {
		t.shutdown()
	}
	for _, t := range oldStandbys {
		for _, oc := range t.allOut {
			oc.close()
		}
	}
	// Re-execution after a global rollback is not byte-guided (fresh
	// nondeterminism), so the predecessor streams stop being the audit
	// reference; detected violations stay counted.
	r.cfg.Audit.Reset()

	cp := r.snaps.LatestCompleted()
	r.mu.Lock()
	r.tasks = make(map[types.TaskID]*Task)
	r.standbys = make(map[types.TaskID]*Task)
	r.failedSet = make(map[types.TaskID]bool)
	r.recovering = make(map[types.TaskID]bool)
	r.pendingReplay = make(map[types.TaskID][]replayRequest)
	stopped := r.stopped
	r.mu.Unlock()
	if stopped {
		return
	}

	// Simulated scheduler/deployment delay of a full restart (see
	// Config.RestartDelay).
	if d := r.cfg.effectiveRestartDelay(); d > 0 {
		time.Sleep(d)
	}

	var fresh []*Task
	r.mu.Lock()
	for _, v := range r.graph.Vertices {
		for s := int32(0); s < int32(v.Parallelism); s++ {
			t := newTask(r, v, s)
			r.tasks[t.id] = t
			fresh = append(fresh, t)
		}
	}
	for _, t := range fresh {
		t.attachNetwork(true)
	}
	if r.cfg.Mode == ModeClonos && r.cfg.Standby {
		for id := range r.tasks {
			r.standbys[id] = newTask(r, r.graph.Vertices[id.Vertex], id.Subtask)
		}
	}
	r.mu.Unlock()

	for _, t := range fresh {
		if cp > 0 {
			if snap, ok := r.snaps.Get(cp, t.id); ok {
				if err := t.restore(snap); err != nil {
					r.reportTaskError(t.id, fmt.Errorf("global restore: %w", err))
				}
			}
		}
		t.start()
		// A rebuilt task dying right after deployment: the detector must
		// notice and drive another full restart.
		t.crashPoint(faultinject.PointGlobalRebuilt)
	}
	r.mu.Lock()
	r.restarting = false
	r.mu.Unlock()
	r.coord.Resume()
}
