package causal

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"clonos/internal/types"
)

func task(v, s int32) types.TaskID {
	return types.TaskID{Vertex: types.VertexID(v), Subtask: s}
}

func chid(e, f, t int32) types.ChannelID {
	return types.ChannelID{Edge: types.EdgeID(e), From: f, To: t}
}

func sampleDeterminants() []Determinant {
	return []Determinant{
		{Kind: KindEpoch, Epoch: 3},
		{Kind: KindOrder, Channel: 2},
		{Kind: KindTimer, Handler: 7, Key: 99, When: -12345, Offset: 42},
		{Kind: KindTimestamp, Value: 1_700_000_000_123},
		{Kind: KindRNG, Value: -987654321},
		{Kind: KindService, ServiceID: 5, Payload: []byte(`{"a":3}`)},
		{Kind: KindRPC, Epoch: 11, Offset: 17},
		{Kind: KindBufferSize, Value: 32768},
	}
}

func TestDeterminantRoundTrip(t *testing.T) {
	for _, d := range sampleDeterminants() {
		b := d.Append(nil)
		got, n, err := decodeDeterminant(b)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if n != len(b) {
			t.Fatalf("%v: consumed %d of %d bytes", d, n, len(b))
		}
		if !got.Equal(d) {
			t.Fatalf("round trip: got %v want %v", got, d)
		}
	}
}

func TestDeterminantDecodeErrors(t *testing.T) {
	if _, _, err := decodeDeterminant(nil); err == nil {
		t.Fatal("decoded empty input")
	}
	if _, _, err := decodeDeterminant([]byte{255}); err == nil {
		t.Fatal("decoded unknown kind")
	}
	// Truncated service payload.
	d := Determinant{Kind: KindService, ServiceID: 1, Payload: []byte("abcdef")}
	b := d.Append(nil)
	if _, _, err := decodeDeterminant(b[:len(b)-3]); err == nil {
		t.Fatal("decoded truncated payload")
	}
}

func TestQuickTimerDeterminantRoundTrip(t *testing.T) {
	f := func(h int32, key uint64, when int64, off uint64) bool {
		d := Determinant{Kind: KindTimer, Handler: h, Key: key, When: when, Offset: off}
		got, _, err := decodeDeterminant(d.Append(nil))
		return err == nil && got.Equal(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickServiceDeterminantRoundTrip(t *testing.T) {
	f := func(id uint16, payload []byte) bool {
		d := Determinant{Kind: KindService, ServiceID: id, Payload: payload}
		got, _, err := decodeDeterminant(d.Append(nil))
		if err != nil {
			return false
		}
		// Payload nil/empty are equivalent on the wire.
		return got.ServiceID == id && string(got.Payload) == string(payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogAppendSinceTruncate(t *testing.T) {
	l := NewLog()
	l.StartEpoch(1)
	l.Append(Determinant{Kind: KindOrder, Channel: 0})
	l.Append(Determinant{Kind: KindOrder, Channel: 1})
	l.StartEpoch(2)
	l.Append(Determinant{Kind: KindOrder, Channel: 2})

	if l.End() != 5 || l.Base() != 0 {
		t.Fatalf("end=%d base=%d", l.End(), l.Base())
	}
	ents, start := l.Since(3)
	if start != 3 || len(ents) != 2 || ents[0].Kind != KindEpoch {
		t.Fatalf("Since(3) = %v at %d", ents, start)
	}
	if idx, ok := l.EpochStart(2); !ok || idx != 3 {
		t.Fatalf("EpochStart(2) = %d,%v", idx, ok)
	}
	l.Truncate(1)
	if l.Base() != 3 || l.Len() != 2 {
		t.Fatalf("after truncate base=%d len=%d", l.Base(), l.Len())
	}
	// Absolute indexing survives truncation.
	ents, start = l.Since(0)
	if start != 3 || len(ents) != 2 {
		t.Fatalf("Since(0) after truncate = %v at %d", ents, start)
	}
	// Truncating without the next epoch marker is a no-op.
	l.Truncate(5)
	if l.Len() != 2 {
		t.Fatal("truncate without marker modified log")
	}
}

func TestLogNewLogAt(t *testing.T) {
	l := NewLogAt(100)
	idx := l.Append(Determinant{Kind: KindOrder})
	if idx != 100 {
		t.Fatalf("first index = %d, want 100", idx)
	}
}

func TestReplicaLogMergeOverlap(t *testing.T) {
	rl := &replicaLog{}
	mk := func(ch int32) Determinant { return Determinant{Kind: KindOrder, Channel: ch} }
	rl.insert(5, []Determinant{mk(5), mk(6), mk(7)})
	rl.insert(0, []Determinant{mk(0), mk(1), mk(2)})
	// Gap 3..4: not contiguous yet.
	if got := rl.contiguousFrom(0); len(got) != 3 {
		t.Fatalf("contiguousFrom(0) = %d entries, want 3", len(got))
	}
	// Overlapping fill joins everything.
	rl.insert(2, []Determinant{mk(2), mk(3), mk(4), mk(5)})
	got := rl.contiguousFrom(0)
	if len(got) != 8 {
		t.Fatalf("contiguousFrom(0) = %d entries, want 8", len(got))
	}
	for i, d := range got {
		if d.Channel != int32(i) {
			t.Fatalf("entry %d has channel %d", i, d.Channel)
		}
	}
	if got := rl.contiguousFrom(100); got != nil {
		t.Fatal("contiguousFrom past end returned entries")
	}
}

func TestReplicaLogRandomizedMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		const n = 40
		full := make([]Determinant, n)
		for i := range full {
			full[i] = Determinant{Kind: KindOrder, Channel: int32(i)}
		}
		rl := &replicaLog{}
		// Insert random overlapping chunks until covered.
		for i := 0; i < 30; i++ {
			a := rng.Intn(n)
			b := a + 1 + rng.Intn(n-a)
			rl.insert(uint64(a), full[a:b])
		}
		rl.insert(0, full[:1])
		rl.insert(uint64(n-1), full[n-1:])
		// May still have gaps; verify every contiguous claim is correct.
		for abs := 0; abs < n; abs++ {
			got := rl.contiguousFrom(uint64(abs))
			for j, d := range got {
				if d.Channel != int32(abs+j) {
					t.Fatalf("trial %d: abs %d entry %d = ch %d", trial, abs, j, d.Channel)
				}
			}
		}
	}
}

func TestStoreIngestExtract(t *testing.T) {
	st := NewStore()
	origin := task(1, 0)
	ch := chid(1, 0, 0)
	main := []Determinant{
		{Kind: KindEpoch, Epoch: 2},
		{Kind: KindOrder, Channel: 0},
		{Kind: KindTimestamp, Value: 111},
	}
	chDets := []Determinant{
		{Kind: KindEpoch, Epoch: 2},
		{Kind: KindBufferSize, Value: 100},
		{Kind: KindBufferSize, Value: 60},
	}
	st.Ingest(origin, 1, MainLogKey, 10, main)
	st.Ingest(origin, 1, ChannelLogKey(ch), 4, chDets)

	ex, ok := st.Extract(origin, 2)
	if !ok {
		t.Fatal("extract failed")
	}
	if ex.MainStart != 10 || len(ex.Main) != 3 {
		t.Fatalf("main start=%d len=%d", ex.MainStart, len(ex.Main))
	}
	if ex.ChannelStarts[ch] != 4 || len(ex.Channels[ch]) != 3 {
		t.Fatalf("channel start=%d len=%d", ex.ChannelStarts[ch], len(ex.Channels[ch]))
	}
	if _, ok := st.Extract(origin, 7); ok {
		t.Fatal("extract for unknown epoch succeeded")
	}
	if _, ok := st.Extract(task(9, 9), 2); ok {
		t.Fatal("extract for unknown origin succeeded")
	}
}

func TestStoreTruncate(t *testing.T) {
	st := NewStore()
	origin := task(1, 0)
	st.Ingest(origin, 1, MainLogKey, 0, []Determinant{
		{Kind: KindEpoch, Epoch: 1},
		{Kind: KindOrder, Channel: 0},
		{Kind: KindEpoch, Epoch: 2},
		{Kind: KindOrder, Channel: 1},
	})
	if st.SizeEntries() != 4 {
		t.Fatalf("size = %d", st.SizeEntries())
	}
	st.Truncate(1)
	if st.SizeEntries() != 2 {
		t.Fatalf("size after truncate = %d", st.SizeEntries())
	}
	if _, ok := st.Extract(origin, 2); !ok {
		t.Fatal("epoch 2 lost by truncation")
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	sets := []ForwardSet{
		{
			Origin: task(1, 2),
			Hops:   1,
			Logs: map[LogKey]Run{
				MainLogKey:                   {Start: 5, Ents: sampleDeterminants()},
				ChannelLogKey(chid(3, 2, 0)): {Start: 0, Ents: []Determinant{{Kind: KindBufferSize, Value: 9}}},
			},
		},
		{
			Origin: task(0, 1),
			Hops:   2,
			Logs: map[LogKey]Run{
				MainLogKey: {Start: 77, Ents: []Determinant{{Kind: KindOrder, Channel: 1}}},
			},
		},
	}
	b := EncodeDelta(nil, sets)
	got, err := DecodeDelta(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d sets", len(got))
	}
	for i := range sets {
		if got[i].Origin != sets[i].Origin || got[i].Hops != sets[i].Hops {
			t.Fatalf("set %d header mismatch: %+v", i, got[i])
		}
		if !reflect.DeepEqual(len(got[i].Logs), len(sets[i].Logs)) {
			t.Fatalf("set %d log count mismatch", i)
		}
		for key, run := range sets[i].Logs {
			gotRun, ok := got[i].Logs[key]
			if !ok || gotRun.Start != run.Start || len(gotRun.Ents) != len(run.Ents) {
				t.Fatalf("set %d log %v mismatch", i, key)
			}
			for j := range run.Ents {
				if !gotRun.Ents[j].Equal(run.Ents[j]) {
					t.Fatalf("set %d log %v ent %d mismatch", i, key, j)
				}
			}
		}
	}
}

func TestDecodeDeltaErrors(t *testing.T) {
	if _, err := DecodeDelta([]byte{}); err == nil {
		t.Fatal("decoded empty delta")
	}
	sets := []ForwardSet{{Origin: task(1, 0), Hops: 1, Logs: map[LogKey]Run{MainLogKey: {Start: 0, Ents: sampleDeterminants()}}}}
	b := EncodeDelta(nil, sets)
	if _, err := DecodeDelta(b[:len(b)/2]); err == nil {
		t.Fatal("decoded truncated delta")
	}
}

func TestManagerDeltaCursorsAdvance(t *testing.T) {
	m := NewManager(task(1, 0), 1)
	down := chid(2, 0, 0)
	m.StartEpochMain(1)
	m.AppendOrder(0)
	m.AppendTimestamp(123)
	m.AppendBufferSize(down, 100)

	d1 := m.DeltaFor(down)
	if d1 == nil {
		t.Fatal("first delta empty")
	}
	sets, err := DecodeDelta(d1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || sets[0].Origin != task(1, 0) || sets[0].Hops != 1 {
		t.Fatalf("sets = %+v", sets)
	}
	if len(sets[0].Logs[MainLogKey].Ents) != 3 {
		t.Fatalf("main delta = %d entries, want 3", len(sets[0].Logs[MainLogKey].Ents))
	}
	// No new determinants: delta is nil.
	if d2 := m.DeltaFor(down); d2 != nil {
		t.Fatalf("second delta not nil: %d bytes", len(d2))
	}
	m.AppendOrder(1)
	d3 := m.DeltaFor(down)
	sets, err = DecodeDelta(d3)
	if err != nil {
		t.Fatal(err)
	}
	run := sets[0].Logs[MainLogKey]
	if len(run.Ents) != 1 || run.Start != 3 {
		t.Fatalf("incremental delta = %+v", run)
	}
}

func TestManagerDSDZeroSharesNothing(t *testing.T) {
	m := NewManager(task(1, 0), 0)
	m.AppendOrder(0)
	if d := m.DeltaFor(chid(1, 0, 0)); d != nil {
		t.Fatal("DSD=0 produced a delta")
	}
}

func TestManagerForwardingDepth(t *testing.T) {
	// a -> b -> c with DSD=2: b forwards a's determinants to c;
	// with DSD=1 it does not.
	for _, dsd := range []int{1, 2} {
		a, b := task(0, 0), task(1, 0)
		ab, bc := chid(0, 0, 0), chid(1, 0, 0)

		ma := NewManager(a, dsd)
		ma.StartEpochMain(1)
		ma.AppendTimestamp(42)
		deltaAB := ma.DeltaFor(ab)

		mb := NewManager(b, dsd)
		if err := mb.Ingest(deltaAB); err != nil {
			t.Fatal(err)
		}
		mb.StartEpochMain(1)
		mb.AppendOrder(0)
		deltaBC := mb.DeltaFor(bc)
		sets, err := DecodeDelta(deltaBC)
		if err != nil {
			t.Fatal(err)
		}
		var origins []types.TaskID
		for _, fs := range sets {
			origins = append(origins, fs.Origin)
		}
		switch dsd {
		case 1:
			if len(sets) != 1 || sets[0].Origin != b {
				t.Fatalf("DSD=1 forwarded: %v", origins)
			}
		case 2:
			if len(sets) != 2 {
				t.Fatalf("DSD=2 sets = %v", origins)
			}
			found := false
			for _, fs := range sets {
				if fs.Origin == a {
					found = true
					if fs.Hops != 2 {
						t.Fatalf("forwarded hops = %d, want 2", fs.Hops)
					}
				}
			}
			if !found {
				t.Fatal("DSD=2 did not forward a's log")
			}
		}
	}
}

func TestManagerTruncate(t *testing.T) {
	m := NewManager(task(1, 0), 1)
	down := chid(2, 0, 0)
	m.StartEpochMain(1)
	m.AppendOrder(0)
	m.StartEpochChannel(down, 1)
	m.AppendBufferSize(down, 10)
	m.StartEpochMain(2)
	m.StartEpochChannel(down, 2)
	m.AppendOrder(1)
	m.Truncate(1)
	if m.Main().Len() != 2 { // EPOCH 2 + ORDER
		t.Fatalf("main len = %d, want 2", m.Main().Len())
	}
	if m.Channel(down).Len() != 1 { // EPOCH 2
		t.Fatalf("channel len = %d, want 1", m.Channel(down).Len())
	}
}

func TestManagerSeedForRecovery(t *testing.T) {
	m := NewManager(task(1, 0), 1)
	ch := chid(2, 0, 0)
	m.SeedForRecovery(50, map[types.ChannelID]uint64{ch: 7})
	if idx := m.Main().Append(Determinant{Kind: KindOrder}); idx != 50 {
		t.Fatalf("main re-based at %d, want 50", idx)
	}
	if idx := m.Channel(ch).Append(Determinant{Kind: KindBufferSize, Value: 1}); idx != 7 {
		t.Fatalf("channel re-based at %d, want 7", idx)
	}
}

func TestManagerIngestIdempotent(t *testing.T) {
	// Replayed buffers carry deltas the replica has already seen; the
	// absolute indexing must make re-ingestion harmless.
	a, b := task(0, 0), task(1, 0)
	ab := chid(0, 0, 0)
	ma := NewManager(a, 1)
	ma.StartEpochMain(1)
	ma.AppendTimestamp(1)
	ma.AppendTimestamp(2)
	delta := ma.DeltaFor(ab)

	mb := NewManager(b, 1)
	if err := mb.Ingest(delta); err != nil {
		t.Fatal(err)
	}
	if err := mb.Ingest(delta); err != nil {
		t.Fatal(err)
	}
	ex, ok := mb.Replicas().Extract(a, 1)
	if !ok || len(ex.Main) != 3 {
		t.Fatalf("extract after duplicate ingest: ok=%v len=%d", ok, len(ex.Main))
	}
}

func TestDeltaForExternal(t *testing.T) {
	m := NewManager(task(2, 0), 1)
	m.StartEpochMain(1)
	m.AppendTimestamp(11)
	d1 := m.DeltaForExternal("kafka")
	if d1 == nil {
		t.Fatal("first external delta empty")
	}
	sets, err := DecodeDelta(d1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || sets[0].Origin != task(2, 0) {
		t.Fatalf("sets = %+v", sets)
	}
	if got := len(sets[0].Logs[MainLogKey].Ents); got != 2 { // EPOCH + TS
		t.Fatalf("entries = %d", got)
	}
	// Incremental: nothing new -> nil.
	if m.DeltaForExternal("kafka") != nil {
		t.Fatal("second delta not nil")
	}
	m.AppendTimestamp(22)
	d2 := m.DeltaForExternal("kafka")
	sets, err = DecodeDelta(d2)
	if err != nil {
		t.Fatal(err)
	}
	run := sets[0].Logs[MainLogKey]
	if len(run.Ents) != 1 || run.Start != 2 {
		t.Fatalf("incremental run = %+v", run)
	}
	// Independent cursors per consumer.
	d3 := m.DeltaForExternal("other")
	sets, _ = DecodeDelta(d3)
	if len(sets[0].Logs[MainLogKey].Ents) != 3 {
		t.Fatal("second consumer did not get full log")
	}
	// Round trip into a store and extract for recovery.
	st := NewStore()
	for _, blob := range [][]byte{d1, d2} {
		ss, err := DecodeDelta(blob)
		if err != nil {
			t.Fatal(err)
		}
		for _, fs := range ss {
			for key, run := range fs.Logs {
				st.Ingest(fs.Origin, fs.Hops, key, run.Start, run.Ents)
			}
		}
	}
	ex, ok := st.Extract(task(2, 0), 1)
	if !ok || len(ex.Main) != 3 {
		t.Fatalf("extract ok=%v len=%d", ok, len(ex.Main))
	}
}

func TestDeltaForExternalDSDZero(t *testing.T) {
	m := NewManager(task(1, 0), 0)
	m.AppendTimestamp(1)
	if m.DeltaForExternal("x") != nil {
		t.Fatal("DSD=0 produced an external delta")
	}
}

// TestQuickAlwaysNoOrphans checks Eq. 1/2 mechanically: whatever
// interleaving of determinant appends and per-channel delta dispatches
// occurs, every downstream replica can recover the origin's main log as a
// contiguous prefix up to the last determinant it was shown — i.e. no
// buffer ever makes a receiver depend on an event whose determinant it
// does not hold.
func TestQuickAlwaysNoOrphans(t *testing.T) {
	f := func(ops []uint8) bool {
		origin := task(0, 0)
		m := NewManager(origin, 1)
		m.StartEpochMain(1)
		chans := []types.ChannelID{chid(0, 0, 0), chid(0, 0, 1)}
		stores := []*Store{NewStore(), NewStore()}
		shown := []uint64{0, 0} // highest absolute main index shared per channel

		for i, op := range ops {
			switch op % 4 {
			case 0:
				m.AppendTimestamp(int64(i))
			case 1:
				m.AppendOrder(int32(i % 3))
			case 2, 3:
				ch := int(op%4) - 2
				delta := m.DeltaFor(chans[ch])
				if delta == nil {
					continue
				}
				sets, err := DecodeDelta(delta)
				if err != nil {
					return false
				}
				for _, fs := range sets {
					for key, run := range fs.Logs {
						stores[ch].Ingest(fs.Origin, fs.Hops, key, run.Start, run.Ents)
						if key.Main && run.Start+uint64(len(run.Ents)) > shown[ch] {
							shown[ch] = run.Start + uint64(len(run.Ents))
						}
					}
				}
			}
		}
		for ch, st := range stores {
			if shown[ch] == 0 {
				continue // nothing delivered: nothing depends on origin
			}
			ex, ok := st.Extract(origin, 1)
			if !ok {
				return false
			}
			// The recovered prefix must be contiguous from the epoch
			// marker through everything this receiver was shown.
			if ex.MainStart != 0 || uint64(len(ex.Main)) < shown[ch] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
