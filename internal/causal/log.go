package causal

import (
	"sync"

	"clonos/internal/types"
)

// Log is one append-only determinant log with absolute indexing. Each task
// keeps one Log for its main thread and one per output channel (§4.3).
// Entries carry absolute indices that survive truncation, so per-consumer
// sharing cursors and replicated copies stay consistent.
type Log struct {
	mu   sync.Mutex
	base uint64 // absolute index of entries[0]
	ents []Determinant
	// epochAt maps an epoch to the absolute index of its EPOCH marker.
	epochAt map[types.EpochID]uint64
}

// NewLog creates an empty log whose next entry has absolute index 0.
func NewLog() *Log {
	return &Log{epochAt: make(map[types.EpochID]uint64)}
}

// NewLogAt creates an empty log whose next entry has the given absolute
// index; recovery seeds a standby's log at the predecessor's epoch-start
// index so re-appended determinants land on identical positions.
func NewLogAt(base uint64) *Log {
	return &Log{base: base, epochAt: make(map[types.EpochID]uint64)}
}

// Append adds a determinant and returns its absolute index.
func (l *Log) Append(d Determinant) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	idx := l.base + uint64(len(l.ents))
	if d.Kind == KindEpoch {
		l.epochAt[d.Epoch] = idx
	}
	l.ents = append(l.ents, d)
	return idx
}

// StartEpoch appends the boundary marker for the given epoch.
func (l *Log) StartEpoch(e types.EpochID) uint64 {
	return l.Append(Determinant{Kind: KindEpoch, Epoch: e})
}

// Base returns the absolute index of the oldest retained entry.
func (l *Log) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// End returns the absolute index one past the newest entry.
func (l *Log) End() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + uint64(len(l.ents))
}

// Len reports the number of retained entries.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ents)
}

// Since returns a copy of the entries with absolute index >= abs, together
// with the absolute index of the first returned entry (== max(abs, base)).
func (l *Log) Since(abs uint64) ([]Determinant, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if abs < l.base {
		abs = l.base
	}
	off := abs - l.base
	if off >= uint64(len(l.ents)) {
		return nil, l.base + uint64(len(l.ents))
	}
	out := make([]Determinant, len(l.ents)-int(off))
	copy(out, l.ents[off:])
	return out, abs
}

// EpochStart returns the absolute index of the EPOCH marker for e, if the
// marker is still retained.
func (l *Log) EpochStart(e types.EpochID) (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	idx, ok := l.epochAt[e]
	return idx, ok
}

// Truncate drops all entries belonging to epochs <= upTo, i.e. everything
// before the EPOCH marker of upTo+1. Called when checkpoint upTo completes
// (§4.3 "Truncating Causal Logs"). If the marker for upTo+1 is not
// present, the log is left unchanged.
func (l *Log) Truncate(upTo types.EpochID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cut, ok := l.epochAt[upTo+1]
	if !ok || cut <= l.base {
		return
	}
	n := cut - l.base
	l.ents = append(l.ents[:0:0], l.ents[n:]...)
	l.base = cut
	for e, idx := range l.epochAt {
		if idx < cut {
			delete(l.epochAt, e)
		}
	}
}
