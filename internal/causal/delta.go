package causal

import (
	"encoding/binary"
	"fmt"

	"clonos/internal/types"
)

// Delta wire format, piggybacked on every network buffer (§4.3):
//
//	numSets uvarint
//	per set:
//	  origin vertex varint | origin subtask varint | hops uvarint
//	  numLogs uvarint
//	  per log:
//	    flag byte (1 = main, 0 = channel)
//	    channel? edge varint | from varint | to varint
//	    firstAbs uvarint | n uvarint | n determinants

// EncodeDelta serializes forward sets onto dst.
func EncodeDelta(dst []byte, sets []ForwardSet) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(sets)))
	for _, fs := range sets {
		dst = binary.AppendVarint(dst, int64(fs.Origin.Vertex))
		dst = binary.AppendVarint(dst, int64(fs.Origin.Subtask))
		dst = binary.AppendUvarint(dst, uint64(fs.Hops))
		dst = binary.AppendUvarint(dst, uint64(len(fs.Logs)))
		for _, key := range sortedLogKeys(fs.Logs) {
			run := fs.Logs[key]
			if key.Main {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
				dst = binary.AppendVarint(dst, int64(key.Channel.Edge))
				dst = binary.AppendVarint(dst, int64(key.Channel.From))
				dst = binary.AppendVarint(dst, int64(key.Channel.To))
			}
			dst = binary.AppendUvarint(dst, run.Start)
			dst = binary.AppendUvarint(dst, uint64(len(run.Ents)))
			for _, d := range run.Ents {
				dst = d.Append(dst)
			}
		}
	}
	return dst
}

// sortedLogKeys orders a set's log keys deterministically: main first,
// then channels by (edge, from, to).
func sortedLogKeys(logs map[LogKey]Run) []LogKey {
	keys := make([]LogKey, 0, len(logs))
	if _, ok := logs[MainLogKey]; ok {
		keys = append(keys, MainLogKey)
	}
	var chans []LogKey
	for k := range logs {
		if !k.Main {
			chans = append(chans, k)
		}
	}
	for i := 1; i < len(chans); i++ {
		for j := i; j > 0 && lessChannel(chans[j].Channel, chans[j-1].Channel); j-- {
			chans[j], chans[j-1] = chans[j-1], chans[j]
		}
	}
	return append(keys, chans...)
}

func lessChannel(a, b types.ChannelID) bool {
	if a.Edge != b.Edge {
		return a.Edge < b.Edge
	}
	if a.From != b.From {
		return a.From < b.From
	}
	return a.To < b.To
}

// DecodeDelta parses a delta produced by EncodeDelta.
func DecodeDelta(b []byte) ([]ForwardSet, error) {
	i := 0
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(b[i:])
		if n <= 0 {
			return 0, fmt.Errorf("causal: truncated delta")
		}
		i += n
		return v, nil
	}
	sv := func() (int64, error) {
		v, n := binary.Varint(b[i:])
		if n <= 0 {
			return 0, fmt.Errorf("causal: truncated delta")
		}
		i += n
		return v, nil
	}
	nSets, err := uv()
	if err != nil {
		return nil, err
	}
	sets := make([]ForwardSet, 0, nSets)
	for s := uint64(0); s < nSets; s++ {
		var fs ForwardSet
		v, err := sv()
		if err != nil {
			return nil, err
		}
		fs.Origin.Vertex = types.VertexID(v)
		if v, err = sv(); err != nil {
			return nil, err
		}
		fs.Origin.Subtask = int32(v)
		h, err := uv()
		if err != nil {
			return nil, err
		}
		fs.Hops = int(h)
		nLogs, err := uv()
		if err != nil {
			return nil, err
		}
		fs.Logs = make(map[LogKey]Run, nLogs)
		for l := uint64(0); l < nLogs; l++ {
			if i >= len(b) {
				return nil, fmt.Errorf("causal: truncated delta")
			}
			flag := b[i]
			i++
			key := MainLogKey
			if flag == 0 {
				var edge, from, to int64
				if edge, err = sv(); err != nil {
					return nil, err
				}
				if from, err = sv(); err != nil {
					return nil, err
				}
				if to, err = sv(); err != nil {
					return nil, err
				}
				key = LogKey{Channel: types.ChannelID{Edge: types.EdgeID(edge), From: int32(from), To: int32(to)}}
			}
			start, err := uv()
			if err != nil {
				return nil, err
			}
			n, err := uv()
			if err != nil {
				return nil, err
			}
			ents := make([]Determinant, 0, n)
			for k := uint64(0); k < n; k++ {
				d, used, err := decodeDeterminant(b[i:])
				if err != nil {
					return nil, err
				}
				i += used
				ents = append(ents, d)
			}
			fs.Logs[key] = Run{Start: start, Ents: ents}
		}
		sets = append(sets, fs)
	}
	return sets, nil
}
