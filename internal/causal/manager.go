package causal

import (
	"sync"

	"clonos/internal/obs"
	"clonos/internal/types"
)

// ManagerMetrics instruments a task's causal subsystem. All fields are
// optional (nil-safe): Appended counts determinants appended to the
// task's own logs, Extractions counts successful replica extractions
// performed during a downstream peer's recovery, DeltaEntries and
// DeltaBytes count determinants shared in piggybacked deltas and the
// encoded bytes they cost on the wire. Comparing DeltaBytes against
// DeltaEntries times the naive per-entry encoding size shows the
// delta-encode savings live.
type ManagerMetrics struct {
	Appended     *obs.Counter
	Extractions  *obs.Counter
	DeltaEntries *obs.Counter
	DeltaBytes   *obs.Counter
}

// Manager is one task's causal-logging subsystem: its own main-thread log,
// one log per output channel, the replicated store of upstream logs, and
// the per-downstream-channel sharing cursors that make each buffer's
// piggybacked delta carry exactly the entries the receiver has not seen.
type Manager struct {
	self types.TaskID
	dsd  int

	mu       sync.Mutex
	main     *Log
	channels map[types.ChannelID]*Log
	replicas *Store
	// cursors[downstreamChannel] tracks what has been shared on that
	// channel: next absolute index per own log and per replica log.
	cursors map[types.ChannelID]*cursorSet
	// externalCursors track sharing with external output systems (§5.5
	// exactly-once output): sink tasks piggyback their main-log deltas
	// on records written to e.g. Kafka.
	externalCursors map[string]uint64
	// encScratch is the reused delta-encode buffer (guarded by mu).
	// Deltas are encoded into it first, then copied out right-sized: the
	// returned slice is retained by in-flight log entries and aliased by
	// wire messages, so it must be private, but the growth churn of
	// building it from nil is amortized away.
	encScratch []byte

	appended     *obs.Counter
	deltaEntries *obs.Counter
	deltaBytes   *obs.Counter
}

type cursorSet struct {
	own      map[LogKey]uint64
	replicas map[types.TaskID]map[LogKey]uint64
}

// NewManager creates the causal subsystem for task self with the given
// determinant sharing depth. DSD 0 disables sharing entirely
// (at-least-once mode, §5.4).
func NewManager(self types.TaskID, dsd int) *Manager {
	return &Manager{
		self:            self,
		dsd:             dsd,
		main:            NewLog(),
		channels:        make(map[types.ChannelID]*Log),
		replicas:        NewStore(),
		cursors:         make(map[types.ChannelID]*cursorSet),
		externalCursors: make(map[string]uint64),
	}
}

// Instrument attaches metrics: Appended to this manager's own-log
// appends, Extractions to its replica store.
func (m *Manager) Instrument(mx ManagerMetrics) {
	m.mu.Lock()
	m.appended = mx.Appended
	m.deltaEntries = mx.DeltaEntries
	m.deltaBytes = mx.DeltaBytes
	m.mu.Unlock()
	m.replicas.Instrument(mx.Extractions)
}

// SizeEntries reports the total retained determinant count across the
// task's own logs (main + channel) and its replica store.
func (m *Manager) SizeEntries() int {
	m.mu.Lock()
	n := m.main.Len()
	for _, l := range m.channels {
		n += l.Len()
	}
	m.mu.Unlock()
	return n + m.replicas.SizeEntries()
}

// Self returns the owning task.
func (m *Manager) Self() types.TaskID { return m.self }

// DSD returns the configured determinant sharing depth.
func (m *Manager) DSD() int { return m.dsd }

// Main returns the main-thread log.
func (m *Manager) Main() *Log { return m.main }

// Channel returns (creating on first use) the log of one output channel.
func (m *Manager) Channel(id types.ChannelID) *Log {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.channels[id]
	if !ok {
		l = NewLog()
		m.channels[id] = l
	}
	return l
}

// Replicas returns the replicated upstream-log store.
func (m *Manager) Replicas() *Store { return m.replicas }

// SeedForRecovery re-bases the task's own logs at the absolute indices the
// predecessor's logs had at the epoch start, so determinants re-appended
// during causally guided replay land on identical positions and remain
// idempotent at downstream replicas.
func (m *Manager) SeedForRecovery(mainStart uint64, channelStarts map[types.ChannelID]uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.main = NewLogAt(mainStart)
	m.channels = make(map[types.ChannelID]*Log)
	for id, start := range channelStarts {
		m.channels[id] = NewLogAt(start)
	}
	// Conservatively forget sharing cursors: all retained entries are
	// re-shared; replicas deduplicate by absolute index.
	m.cursors = make(map[types.ChannelID]*cursorSet)
	m.externalCursors = make(map[string]uint64)
}

// DeltaForExternal assembles the delta of the task's own main log for an
// external output system (§5.5): sink tasks attach it to outgoing records
// so the output system can return the determinants during recovery. It
// advances the named consumer's cursor and returns nil when nothing is
// new or DSD is 0.
func (m *Manager) DeltaForExternal(consumer string) []byte {
	if m.dsd <= 0 {
		return nil
	}
	m.mu.Lock()
	from := m.externalCursors[consumer]
	m.mu.Unlock()
	ents, start := m.main.Since(from)
	if len(ents) == 0 {
		return nil
	}
	m.mu.Lock()
	m.externalCursors[consumer] = start + uint64(len(ents))
	m.mu.Unlock()
	return m.encodeDelta([]ForwardSet{{
		Origin: m.self,
		Hops:   1,
		Logs:   map[LogKey]Run{MainLogKey: {Start: start, Ents: ents}},
	}})
}

// encodeDelta serializes sets via the reused scratch buffer and returns a
// private right-sized copy (one exact allocation instead of append-growth
// doubling).
func (m *Manager) encodeDelta(sets []ForwardSet) []byte {
	ents := 0
	for _, fs := range sets {
		for _, run := range fs.Logs {
			ents += len(run.Ents)
		}
	}
	m.mu.Lock()
	m.encScratch = EncodeDelta(m.encScratch[:0], sets)
	out := append(make([]byte, 0, len(m.encScratch)), m.encScratch...)
	m.deltaEntries.Add(uint64(ents))
	m.deltaBytes.Add(uint64(len(out)))
	m.mu.Unlock()
	return out
}

// DeltaFor assembles and serializes the causal delta to piggyback on the
// next buffer dispatched to the given downstream channel, advancing the
// channel's cursors. Returns nil when DSD is 0 or nothing is new.
func (m *Manager) DeltaFor(down types.ChannelID) []byte {
	if m.dsd <= 0 {
		return nil
	}
	m.mu.Lock()
	cs, ok := m.cursors[down]
	if !ok {
		cs = &cursorSet{own: make(map[LogKey]uint64), replicas: make(map[types.TaskID]map[LogKey]uint64)}
		m.cursors[down] = cs
	}
	// Own logs: main + every output-channel log (the paper replicates
	// all of them to every downstream, §4.3).
	own := ForwardSet{Origin: m.self, Hops: 1, Logs: make(map[LogKey]Run)}
	if ents, start := m.main.Since(cs.own[MainLogKey]); len(ents) > 0 {
		own.Logs[MainLogKey] = Run{Start: start, Ents: ents}
		cs.own[MainLogKey] = start + uint64(len(ents))
	}
	for id, l := range m.channels {
		key := ChannelLogKey(id)
		if ents, start := l.Since(cs.own[key]); len(ents) > 0 {
			own.Logs[key] = Run{Start: start, Ents: ents}
			cs.own[key] = start + uint64(len(ents))
		}
	}
	m.mu.Unlock()

	sets := m.replicas.ForwardableSince(m.dsd, cs.replicas)
	m.mu.Lock()
	for _, fs := range sets {
		rc, ok := cs.replicas[fs.Origin]
		if !ok {
			rc = make(map[LogKey]uint64)
			cs.replicas[fs.Origin] = rc
		}
		for key, run := range fs.Logs {
			rc[key] = run.Start + uint64(len(run.Ents))
		}
	}
	m.mu.Unlock()

	if len(own.Logs) > 0 {
		sets = append([]ForwardSet{own}, sets...)
	}
	if len(sets) == 0 {
		return nil
	}
	return m.encodeDelta(sets)
}

// Ingest merges a received delta into the replica store. The task runtime
// calls this before processing the records of the carrying buffer.
func (m *Manager) Ingest(delta []byte) error {
	if len(delta) == 0 {
		return nil
	}
	sets, err := DecodeDelta(delta)
	if err != nil {
		return err
	}
	for _, fs := range sets {
		for key, run := range fs.Logs {
			m.replicas.Ingest(fs.Origin, fs.Hops, key, run.Start, run.Ents)
		}
	}
	return nil
}

// StartEpochMain appends the epoch marker to the main-thread log.
func (m *Manager) StartEpochMain(e types.EpochID) { m.main.StartEpoch(e) }

// StartEpochMainAt appends the epoch marker and returns its absolute
// index, recorded in checkpoints as the standby's log seed position.
func (m *Manager) StartEpochMainAt(e types.EpochID) uint64 { return m.main.StartEpoch(e) }

// StartEpochChannel appends the epoch marker to one channel log; called
// when the barrier is dispatched on that channel.
func (m *Manager) StartEpochChannel(id types.ChannelID, e types.EpochID) {
	m.Channel(id).StartEpoch(e)
}

// Truncate drops all determinants of epochs <= upTo from the task's own
// logs and its replicas, after checkpoint upTo completes.
func (m *Manager) Truncate(upTo types.EpochID) {
	m.mu.Lock()
	logs := make([]*Log, 0, len(m.channels)+1)
	logs = append(logs, m.main)
	for _, l := range m.channels {
		logs = append(logs, l)
	}
	m.mu.Unlock()
	for _, l := range logs {
		l.Truncate(upTo)
	}
	m.replicas.Truncate(upTo)
}

// AppendOrder logs that the main thread consumed a buffer from the given
// gate channel index.
func (m *Manager) AppendOrder(channel int32) {
	m.main.Append(Determinant{Kind: KindOrder, Channel: channel})
	m.appended.Inc()
}

// AppendTimer logs an asynchronous processing-time timer firing.
func (m *Manager) AppendTimer(handler int32, key uint64, when int64, offset uint64) {
	m.main.Append(Determinant{Kind: KindTimer, Handler: handler, Key: key, When: when, Offset: offset})
	m.appended.Inc()
}

// AppendTimestamp logs a wall-clock reading.
func (m *Manager) AppendTimestamp(ms int64) {
	m.main.Append(Determinant{Kind: KindTimestamp, Value: ms})
	m.appended.Inc()
}

// AppendRNG logs a fresh random seed.
func (m *Manager) AppendRNG(seed int64) {
	m.main.Append(Determinant{Kind: KindRNG, Value: seed})
	m.appended.Inc()
}

// AppendService logs a causal-service response payload.
func (m *Manager) AppendService(id uint16, payload []byte) {
	m.main.Append(Determinant{Kind: KindService, ServiceID: id, Payload: payload})
	m.appended.Inc()
}

// AppendRPC logs a state-affecting RPC (checkpoint trigger) and the input
// offset at which it was handled.
func (m *Manager) AppendRPC(checkpoint types.EpochID, offset uint64) {
	m.main.Append(Determinant{Kind: KindRPC, Epoch: checkpoint, Offset: offset})
	m.appended.Inc()
}

// AppendBufferSize logs the size of a buffer dispatched on one channel,
// in that channel's own log.
func (m *Manager) AppendBufferSize(id types.ChannelID, size int) {
	m.Channel(id).Append(Determinant{Kind: KindBufferSize, Value: int64(size)})
	m.appended.Inc()
}
