package causal

import (
	"sort"
	"sync"

	"clonos/internal/obs"
	"clonos/internal/types"
)

// LogKey identifies one log of a task: its main-thread log or the log of
// one of its output channels.
type LogKey struct {
	Main    bool
	Channel types.ChannelID
}

// MainLogKey is the key of a task's main-thread log.
var MainLogKey = LogKey{Main: true}

// ChannelLogKey returns the key of an output channel's log.
func ChannelLogKey(id types.ChannelID) LogKey { return LogKey{Channel: id} }

// segment is a contiguous run of determinants with absolute indexing.
type segment struct {
	start uint64
	ents  []Determinant
}

func (s segment) end() uint64 { return s.start + uint64(len(s.ents)) }

// replicaLog stores possibly discontiguous received pieces of one log,
// merged into sorted non-overlapping segments. Diamond topologies with
// DSD > 1 can deliver overlapping or out-of-order ranges of the same
// origin log along different paths.
type replicaLog struct {
	segs []segment
}

// insert merges a new run into the segment set.
func (r *replicaLog) insert(start uint64, ents []Determinant) {
	if len(ents) == 0 {
		return
	}
	in := segment{start: start, ents: append([]Determinant(nil), ents...)}
	var merged []segment
	placed := false
	for _, s := range r.segs {
		switch {
		case s.end() < in.start || in.end() < s.start:
			// Disjoint; keep ordering.
			if !placed && in.start < s.start {
				merged = append(merged, in)
				placed = true
			}
			merged = append(merged, s)
		default:
			// Overlapping or adjacent: coalesce into `in`.
			in = coalesce(s, in)
		}
	}
	if !placed {
		merged = append(merged, in)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].start < merged[j].start })
	r.segs = merged
}

// coalesce merges two overlapping/adjacent segments. Overlapping entries
// are taken from whichever segment provides them (they are identical by
// construction: the same origin log position).
func coalesce(a, b segment) segment {
	if b.start < a.start {
		a, b = b, a
	}
	if b.end() <= a.end() {
		return a // b fully contained
	}
	tail := b.ents[a.end()-b.start:]
	out := segment{start: a.start, ents: make([]Determinant, 0, int(a.end()-a.start)+len(tail))}
	out.ents = append(out.ents, a.ents...)
	out.ents = append(out.ents, tail...)
	return out
}

// contiguousFrom returns the longest contiguous run starting at abs, or
// nil if abs is not covered.
func (r *replicaLog) contiguousFrom(abs uint64) []Determinant {
	for _, s := range r.segs {
		if s.start <= abs && abs < s.end() {
			return s.ents[abs-s.start:]
		}
	}
	return nil
}

// since returns the contiguous entries available starting at abs and the
// absolute index of the first returned entry. When abs falls in a gap or
// past the end, nothing is returned.
func (r *replicaLog) since(abs uint64) ([]Determinant, uint64) {
	ents := r.contiguousFrom(abs)
	return ents, abs
}

// epochStart scans retained segments for the EPOCH marker of e.
func (r *replicaLog) epochStart(e types.EpochID) (uint64, bool) {
	for _, s := range r.segs {
		for i, d := range s.ents {
			if d.Kind == KindEpoch && d.Epoch == e {
				return s.start + uint64(i), true
			}
		}
	}
	return 0, false
}

// truncate drops entries before the EPOCH marker of upTo+1, if present.
func (r *replicaLog) truncate(upTo types.EpochID) {
	cut, ok := r.epochStart(upTo + 1)
	if !ok {
		return
	}
	var kept []segment
	for _, s := range r.segs {
		switch {
		case s.end() <= cut:
			// drop entirely
		case s.start >= cut:
			kept = append(kept, s)
		default:
			kept = append(kept, segment{start: cut, ents: append([]Determinant(nil), s.ents[cut-s.start:]...)})
		}
	}
	r.segs = kept
}

// end returns one past the highest retained index, or 0 when empty.
func (r *replicaLog) end() uint64 {
	if len(r.segs) == 0 {
		return 0
	}
	return r.segs[len(r.segs)-1].end()
}

// Replica is everything a task holds about one origin task's logs.
type Replica struct {
	Origin types.TaskID
	// Hops is the distance from the origin to this holder (1 = direct
	// downstream). Forwarding only continues while Hops < DSD.
	Hops int
	logs map[LogKey]*replicaLog
}

// Extracted is the recovery view of an origin task's logs: the contiguous
// determinant runs starting at the requested epoch's boundary marker.
type Extracted struct {
	Origin types.TaskID
	// Main holds the main-thread determinants from the epoch marker on;
	// MainStart is the absolute index of the first entry.
	Main      []Determinant
	MainStart uint64
	// Channels holds each output-channel log from its epoch marker on.
	Channels      map[types.ChannelID][]Determinant
	ChannelStarts map[types.ChannelID]uint64
}

// Store is a task's replicated collection of upstream determinant logs.
// Deltas piggybacked on incoming buffers are ingested here *before* the
// buffer's records are processed, preserving Depend(e) ⊆ Log(e).
type Store struct {
	mu          sync.Mutex
	byOrigin    map[types.TaskID]*Replica
	extractions *obs.Counter
}

// Instrument attaches a counter incremented on every successful Extract —
// this holder serving determinants for a recovering upstream peer.
func (s *Store) Instrument(extractions *obs.Counter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.extractions = extractions
}

// NewStore creates an empty replica store.
func NewStore() *Store {
	return &Store{byOrigin: make(map[types.TaskID]*Replica)}
}

// Ingest merges a received run of an origin task's log. hops is the
// distance from the origin to this task.
func (s *Store) Ingest(origin types.TaskID, hops int, key LogKey, first uint64, ents []Determinant) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, ok := s.byOrigin[origin]
	if !ok {
		rep = &Replica{Origin: origin, Hops: hops, logs: make(map[LogKey]*replicaLog)}
		s.byOrigin[origin] = rep
	}
	if hops < rep.Hops {
		rep.Hops = hops
	}
	rl, ok := rep.logs[key]
	if !ok {
		rl = &replicaLog{}
		rep.logs[key] = rl
	}
	rl.insert(first, ents)
}

// Origins returns the origin tasks currently replicated, with their hop
// distance.
func (s *Store) Origins() map[types.TaskID]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[types.TaskID]int, len(s.byOrigin))
	for id, rep := range s.byOrigin {
		out[id] = rep.Hops
	}
	return out
}

// ForwardableSince returns, for each origin with hops < dsd, the
// contiguous entries of each of its logs starting at the given cursor
// positions. cursors maps origin → log → next absolute index wanted; a
// missing cursor starts from the oldest retained entry of that log.
// The returned runs use the same nested shape, paired with start indices.
func (s *Store) ForwardableSince(dsd int, cursors map[types.TaskID]map[LogKey]uint64) []ForwardSet {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ForwardSet
	for origin, rep := range s.byOrigin {
		if rep.Hops >= dsd {
			continue
		}
		fs := ForwardSet{Origin: origin, Hops: rep.Hops + 1, Logs: make(map[LogKey]Run)}
		for key, rl := range rep.logs {
			var from uint64
			if c, ok := cursors[origin]; ok {
				from = c[key]
			}
			if from == 0 && len(rl.segs) > 0 {
				from = rl.segs[0].start
			}
			ents, start := rl.since(from)
			if len(ents) > 0 {
				fs.Logs[key] = Run{Start: start, Ents: ents}
			}
		}
		if len(fs.Logs) > 0 {
			out = append(out, fs)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Origin, out[j].Origin
		if a.Vertex != b.Vertex {
			return a.Vertex < b.Vertex
		}
		return a.Subtask < b.Subtask
	})
	return out
}

// Run is a contiguous determinant run with its absolute start index.
type Run struct {
	Start uint64
	Ents  []Determinant
}

// ForwardSet is one origin task's forwardable logs.
type ForwardSet struct {
	Origin types.TaskID
	Hops   int
	Logs   map[LogKey]Run
}

// Extract builds the recovery view for an origin task from the requested
// epoch. It reports false if no EPOCH marker for that epoch is retained
// in the origin's main log — the caller may then escalate to a global
// rollback (§5.3, DSD < D orphan case).
func (s *Store) Extract(origin types.TaskID, fromEpoch types.EpochID) (Extracted, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, ok := s.byOrigin[origin]
	if !ok {
		return Extracted{}, false
	}
	ex := Extracted{
		Origin:        origin,
		Channels:      make(map[types.ChannelID][]Determinant),
		ChannelStarts: make(map[types.ChannelID]uint64),
	}
	main, ok := rep.logs[MainLogKey]
	if !ok {
		return Extracted{}, false
	}
	start, ok := main.epochStart(fromEpoch)
	if !ok {
		return Extracted{}, false
	}
	ex.MainStart = start
	ex.Main = append([]Determinant(nil), main.contiguousFrom(start)...)
	for key, rl := range rep.logs {
		if key.Main {
			continue
		}
		cs, ok := rl.epochStart(fromEpoch)
		if !ok {
			continue
		}
		ex.Channels[key.Channel] = append([]Determinant(nil), rl.contiguousFrom(cs)...)
		ex.ChannelStarts[key.Channel] = cs
	}
	s.extractions.Inc()
	return ex, true
}

// Truncate drops determinants of epochs <= upTo from every replica.
func (s *Store) Truncate(upTo types.EpochID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rep := range s.byOrigin {
		for _, rl := range rep.logs {
			rl.truncate(upTo)
		}
	}
}

// SizeEntries reports the total retained determinant count, a memory
// proxy for the §7.5 experiments.
func (s *Store) SizeEntries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, rep := range s.byOrigin {
		for _, rl := range rep.logs {
			for _, seg := range rl.segs {
				n += len(seg.ents)
			}
		}
	}
	return n
}
