// Package causal implements causal logging for the streaming engine
// (Clonos §3.3, §4.3): determinants describing every nondeterministic
// event, per-thread causal logs segmented by epoch, log deltas piggybacked
// on outgoing network buffers, a replicated store of upstream determinants
// at each downstream task, and the determinant-sharing-depth (DSD)
// forwarding rule.
package causal

import (
	"encoding/binary"
	"fmt"

	"clonos/internal/types"
)

// Kind discriminates determinant variants.
type Kind uint8

const (
	// KindEpoch marks an epoch boundary inside a log, making logs
	// self-describing for truncation and recovery extraction.
	KindEpoch Kind = iota
	// KindOrder records which input channel the main thread consumed a
	// buffer from (record-processing order, §4.2).
	KindOrder
	// KindTimer records an asynchronous processing-time timer firing:
	// handler, key, deadline, and the input offset at which it fired.
	KindTimer
	// KindTimestamp records a wall-clock reading returned by the
	// Timestamp service.
	KindTimestamp
	// KindRNG records the random seed drawn at an epoch start by the
	// RNG service.
	KindRNG
	// KindService records the serialized response of a (possibly
	// user-defined) causal service call, e.g. an external HTTP request.
	KindService
	// KindRPC records a state-affecting RPC received by the task — in
	// this engine the checkpoint-trigger RPC delivered to sources —
	// with the input offset at which it was handled.
	KindRPC
	// KindBufferSize records, in an output channel's own log, the size
	// of a dispatched buffer (nondeterministic due to timed flushes).
	KindBufferSize
)

func (k Kind) String() string {
	switch k {
	case KindEpoch:
		return "EPOCH"
	case KindOrder:
		return "ORDER"
	case KindTimer:
		return "TIMER"
	case KindTimestamp:
		return "TS"
	case KindRNG:
		return "RNG"
	case KindService:
		return "SERVICE"
	case KindRPC:
		return "RPC"
	case KindBufferSize:
		return "BS"
	default:
		return fmt.Sprintf("DET(%d)", uint8(k))
	}
}

// Determinant is one logged nondeterministic event. Field use by kind:
//
//	EPOCH:      Epoch
//	ORDER:      Channel
//	TIMER:      Handler, Key, When, Offset
//	TS:         Value (ms)
//	RNG:        Value (seed)
//	SERVICE:    ServiceID, Payload
//	RPC:        Epoch (checkpoint id), Offset
//	BUFFERSIZE: Value (bytes)
type Determinant struct {
	Kind      Kind
	Channel   int32
	Handler   int32
	Key       uint64
	When      int64
	Offset    uint64
	Value     int64
	Epoch     types.EpochID
	ServiceID uint16
	Payload   []byte
}

// Equal reports deep equality, used by tests and replay assertions.
func (d Determinant) Equal(o Determinant) bool {
	if d.Kind != o.Kind || d.Channel != o.Channel || d.Handler != o.Handler ||
		d.Key != o.Key || d.When != o.When || d.Offset != o.Offset ||
		d.Value != o.Value || d.Epoch != o.Epoch || d.ServiceID != o.ServiceID {
		return false
	}
	return string(d.Payload) == string(o.Payload)
}

func (d Determinant) String() string {
	switch d.Kind {
	case KindEpoch:
		return fmt.Sprintf("EPOCH %d", d.Epoch)
	case KindOrder:
		return fmt.Sprintf("ORDER ch=%d", d.Channel)
	case KindTimer:
		return fmt.Sprintf("TIMER h=%d key=%d when=%d off=%d", d.Handler, d.Key, d.When, d.Offset)
	case KindTimestamp:
		return fmt.Sprintf("TS %d", d.Value)
	case KindRNG:
		return fmt.Sprintf("RNG %d", d.Value)
	case KindService:
		return fmt.Sprintf("SERVICE id=%d %dB", d.ServiceID, len(d.Payload))
	case KindRPC:
		return fmt.Sprintf("RPC chk=%d off=%d", d.Epoch, d.Offset)
	case KindBufferSize:
		return fmt.Sprintf("BS %d", d.Value)
	default:
		return d.Kind.String()
	}
}

// Append serializes d onto dst.
func (d Determinant) Append(dst []byte) []byte {
	dst = append(dst, byte(d.Kind))
	switch d.Kind {
	case KindEpoch:
		dst = binary.AppendUvarint(dst, uint64(d.Epoch))
	case KindOrder:
		dst = binary.AppendVarint(dst, int64(d.Channel))
	case KindTimer:
		dst = binary.AppendVarint(dst, int64(d.Handler))
		dst = binary.AppendUvarint(dst, d.Key)
		dst = binary.AppendVarint(dst, d.When)
		dst = binary.AppendUvarint(dst, d.Offset)
	case KindTimestamp, KindRNG, KindBufferSize:
		dst = binary.AppendVarint(dst, d.Value)
	case KindService:
		dst = binary.AppendUvarint(dst, uint64(d.ServiceID))
		dst = binary.AppendUvarint(dst, uint64(len(d.Payload)))
		dst = append(dst, d.Payload...)
	case KindRPC:
		dst = binary.AppendUvarint(dst, uint64(d.Epoch))
		dst = binary.AppendUvarint(dst, d.Offset)
	}
	return dst
}

// decodeDeterminant decodes one determinant from b, returning it and the
// bytes consumed.
func decodeDeterminant(b []byte) (Determinant, int, error) {
	if len(b) == 0 {
		return Determinant{}, 0, fmt.Errorf("causal: empty determinant")
	}
	d := Determinant{Kind: Kind(b[0])}
	i := 1
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(b[i:])
		if n <= 0 {
			return 0, fmt.Errorf("causal: truncated determinant")
		}
		i += n
		return v, nil
	}
	sv := func() (int64, error) {
		v, n := binary.Varint(b[i:])
		if n <= 0 {
			return 0, fmt.Errorf("causal: truncated determinant")
		}
		i += n
		return v, nil
	}
	var err error
	switch d.Kind {
	case KindEpoch:
		var e uint64
		if e, err = uv(); err == nil {
			d.Epoch = types.EpochID(e)
		}
	case KindOrder:
		var c int64
		if c, err = sv(); err == nil {
			d.Channel = int32(c)
		}
	case KindTimer:
		var h int64
		if h, err = sv(); err != nil {
			break
		}
		d.Handler = int32(h)
		if d.Key, err = uv(); err != nil {
			break
		}
		if d.When, err = sv(); err != nil {
			break
		}
		d.Offset, err = uv()
	case KindTimestamp, KindRNG, KindBufferSize:
		d.Value, err = sv()
	case KindService:
		var id, n uint64
		if id, err = uv(); err != nil {
			break
		}
		d.ServiceID = uint16(id)
		if n, err = uv(); err != nil {
			break
		}
		if uint64(len(b)-i) < n {
			err = fmt.Errorf("causal: truncated service payload")
			break
		}
		d.Payload = append([]byte(nil), b[i:i+int(n)]...)
		i += int(n)
	case KindRPC:
		var e uint64
		if e, err = uv(); err != nil {
			break
		}
		d.Epoch = types.EpochID(e)
		d.Offset, err = uv()
	default:
		err = fmt.Errorf("causal: unknown determinant kind %d", b[0])
	}
	if err != nil {
		return Determinant{}, 0, err
	}
	return d, i, nil
}
