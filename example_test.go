package clonos_test

import (
	"fmt"
	"time"

	"clonos"
)

// ExampleJobGraph builds and runs a small keyed-aggregation pipeline to
// completion on a replayable topic.
func ExampleJobGraph() {
	topic := clonos.NewTopic("numbers", 1)
	sink := clonos.NewSinkTopic(true)

	g := clonos.NewJobGraph()
	g.FromTopic("src", 1, topic).
		KeyBy(func(v any) uint64 { return uint64(v.(int64) % 2) }).
		Reduce("sum", func(ctx clonos.Context, acc any, e clonos.Element) (any, error) {
			s, _ := acc.(int64)
			return s + e.Value.(int64), nil
		}).
		ToSink("out", sink)

	for i := int64(1); i <= 10; i++ {
		topic.Append(clonos.TopicRecord(uint64(i), i, i))
	}
	topic.Close()

	jb, err := clonos.Start(g, clonos.DefaultConfig())
	if err != nil {
		fmt.Println("start:", err)
		return
	}
	defer jb.Stop()
	if !jb.WaitFinished(30 * time.Second) {
		fmt.Println("timed out")
		return
	}

	// The last record per key carries its final sum.
	final := map[uint64]int64{}
	for _, rec := range sink.All() {
		final[rec.Key] = rec.Value.(int64)
	}
	fmt.Println("even:", final[0])
	fmt.Println("odd: ", final[1])
	// Output:
	// even: 30
	// odd:  25
}
