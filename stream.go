package clonos

import (
	"fmt"

	"clonos/internal/job"
	"clonos/internal/operator"
	"clonos/internal/types"
)

// JobGraph builds a dataflow topology through a fluent Stream API. Each
// transformation adds a vertex; consecutive same-parallelism stages are
// connected forward (fused-like cheap path) unless a KeyBy re-partitions.
type JobGraph struct {
	g   *job.Graph
	err error
}

// NewJobGraph creates an empty topology.
func NewJobGraph() *JobGraph { return &JobGraph{g: job.NewGraph()} }

// Err returns the first construction error, also reported by Start.
func (jg *JobGraph) Err() error { return jg.err }

// Graph exposes the underlying graph for advanced wiring (multi-input
// operators, custom partitioners, per-edge codecs).
func (jg *JobGraph) Graph() *job.Graph { return jg.g }

// Stream is one dataflow edge endpoint under construction.
type Stream struct {
	jg *JobGraph
	v  *job.Vertex
	// keyOf, when set by KeyBy, makes the next connection a hash
	// shuffle re-keyed by it.
	keyOf func(v any) uint64
	keyed bool
	// edgeCodec, when set by EdgeCodec/KeyByCodec, overrides the next
	// connection's payload codec. Nil edges auto-select the registered
	// typed codec per value, with gob as the reflective fallback.
	edgeCodec Codec
}

// EdgeCodec pins the payload codec of the next connection, overriding
// per-value auto-selection — useful when the value type is known and the
// one-byte type tag of the auto frame should be avoided, or to force a
// specific wire format.
func (s *Stream) EdgeCodec(c Codec) *Stream {
	return &Stream{jg: s.jg, v: s.v, keyOf: s.keyOf, keyed: s.keyed, edgeCodec: c}
}

// KeyByCodec is KeyBy with a pinned payload codec for the next
// connection.
func (s *Stream) KeyByCodec(keyOf func(v any) uint64, c Codec) *Stream {
	return &Stream{jg: s.jg, v: s.v, keyOf: keyOf, keyed: true, edgeCodec: c}
}

// SourceOptions tune a topic source.
type SourceOptions struct {
	// WatermarkEvery emits a watermark every N records (default 100).
	WatermarkEvery int64
	// Lateness is subtracted from the max event time.
	Lateness int64
}

// FromTopic adds a source vertex reading a replayable topic.
func (jg *JobGraph) FromTopic(name string, parallelism int, topic *Topic, opts ...SourceOptions) *Stream {
	var o SourceOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	src := &operator.KafkaSource{
		SourceName:     name,
		Topic:          topic,
		WatermarkEvery: o.WatermarkEvery,
		Lateness:       o.Lateness,
	}
	v := jg.g.AddVertex(name, parallelism, src)
	return &Stream{jg: jg, v: v}
}

// connect wires the previous vertex to a new one.
func (s *Stream) connect(v *job.Vertex) *Stream {
	p := job.PartitionForward
	var keyOf func(any) uint64
	if s.keyed {
		p = job.PartitionHash
		keyOf = s.keyOf
	} else if s.v.Parallelism != v.Parallelism {
		p = job.PartitionRebalance
	}
	s.jg.g.Connect(s.v, v, p, keyOf, s.edgeCodec)
	return &Stream{jg: s.jg, v: v}
}

// KeyBy re-partitions the stream by the given key extractor; the next
// stage receives records hash-routed (and re-keyed) by it.
func (s *Stream) KeyBy(keyOf func(v any) uint64) *Stream {
	return &Stream{jg: s.jg, v: s.v, keyOf: keyOf, keyed: true, edgeCodec: s.edgeCodec}
}

// Parallelism overrides the next stage's parallelism (defaults to the
// previous stage's).
func (s *Stream) parallelismFor() int { return s.v.Parallelism }

// Map adds a one-to-(zero-or-one) transformation.
func (s *Stream) Map(name string, f func(ctx Context, e Element) (any, bool, error)) *Stream {
	return s.connect(s.jg.g.AddVertex(name, s.parallelismFor(), nil, operator.Map(name, f)))
}

// Filter keeps records matching pred.
func (s *Stream) Filter(name string, pred func(ctx Context, e Element) (bool, error)) *Stream {
	return s.connect(s.jg.g.AddVertex(name, s.parallelismFor(), nil, operator.Filter(name, pred)))
}

// FlatMap adds a one-to-many transformation.
func (s *Stream) FlatMap(name string, f func(ctx Context, e Element, emit func(key uint64, ts int64, v any)) error) *Stream {
	return s.connect(s.jg.g.AddVertex(name, s.parallelismFor(), nil, operator.FlatMap(name, f)))
}

// Reduce adds a keyed rolling reduce (emits the updated accumulator per
// record). Use after KeyBy for meaningful partitioning.
func (s *Stream) Reduce(name string, f func(ctx Context, acc any, e Element) (any, error)) *Stream {
	return s.connect(s.jg.g.AddVertex(name, s.parallelismFor(), nil, operator.KeyedReduce(name, f)))
}

// Window adds a keyed window aggregation.
func (s *Stream) Window(name string, spec WindowSpec, agg AggregateFn) *Stream {
	return s.connect(s.jg.g.AddVertex(name, s.parallelismFor(), nil, operator.Window(name, spec, agg, false)))
}

// Apply adds a custom operator.
func (s *Stream) Apply(op Operator) *Stream {
	return s.connect(s.jg.g.AddVertex(op.Name(), s.parallelismFor(), nil, op))
}

// JoinWith adds a full-history hash join between this stream (left) and
// other (right) on the record key.
func (s *Stream) JoinWith(name string, other *Stream, combine func(left, right any) any) *Stream {
	if s.jg != other.jg {
		s.jg.err = fmt.Errorf("clonos: joining streams from different graphs")
		return s
	}
	v := s.jg.g.AddVertex(name, s.parallelismFor(), nil, operator.HashJoin(name, combine))
	s.connectTo(v)
	other.connectTo(v)
	return &Stream{jg: s.jg, v: v}
}

// connectTo wires this stream endpoint into an existing vertex (one more
// input port).
func (s *Stream) connectTo(v *job.Vertex) {
	p := job.PartitionForward
	var keyOf func(any) uint64
	if s.keyed {
		p = job.PartitionHash
		keyOf = s.keyOf
	} else if s.v.Parallelism != v.Parallelism {
		p = job.PartitionRebalance
	}
	s.jg.g.Connect(s.v, v, p, keyOf, s.edgeCodec)
}

// ToSink terminates the stream into a measured sink topic (parallelism 1).
func (s *Stream) ToSink(name string, sink *SinkTopic) {
	s.toSink(name, sink, false)
}

// ToSinkExactlyOnce terminates the stream into a sink with the §5.5
// exactly-once-output extension: the sink task's determinants are
// piggybacked onto the records it publishes, the topic stores them, and a
// failed sink recovers causally guided through the topic itself — no
// transactional two-phase commit, no checkpoint-interval output latency.
func (s *Stream) ToSinkExactlyOnce(name string, sink *SinkTopic) {
	s.toSink(name, sink, true)
}

func (s *Stream) toSink(name string, sink *SinkTopic, eoo bool) {
	ks := operator.NewKafkaSink(name, sink)
	ks.ExactlyOnceOutput = eoo
	v := s.jg.g.AddVertex(name, 1, nil, ks)
	p := job.PartitionHash
	var keyOf func(any) uint64
	if s.keyed {
		keyOf = s.keyOf
	}
	s.jg.g.Connect(s.v, v, p, keyOf, s.edgeCodec)
}

// VertexID returns the stream's producing vertex ID, for failure
// injection in tests and experiments.
func (s *Stream) VertexID() types.VertexID { return s.v.ID }

// Task returns the TaskID of one subtask of this stream's vertex.
func (s *Stream) Task(subtask int32) TaskID {
	return TaskID{Vertex: s.v.ID, Subtask: subtask}
}
