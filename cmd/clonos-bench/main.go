// Command clonos-bench regenerates the paper's tables and figures on the
// Go reproduction of Clonos. Each experiment prints the rows/series the
// corresponding figure plots; absolute numbers are scaled (single process,
// ~10x faster clocks) but the comparative shapes follow the paper.
//
// Usage:
//
//	clonos-bench -experiment fig5        # Figure 5 + §7.3 overhead
//	clonos-bench -experiment fig6a       # Figures 6a/6e (Q3, single failure)
//	clonos-bench -experiment fig6b       # Figures 6b/6f (Q8, single failure)
//	clonos-bench -experiment fig6c       # Figures 6c/6g (staggered failures)
//	clonos-bench -experiment fig6d       # Figures 6d/6h (concurrent failures)
//	clonos-bench -experiment table1      # Table 1
//	clonos-bench -experiment mem         # §7.5 spill-policy study
//	clonos-bench -experiment guarantees  # §5.4 guarantee ablation
//	clonos-bench -experiment dsd         # determinant-sharing-depth sweep
//	clonos-bench -experiment matrix      # recovery-under-load matrix
//	clonos-bench -experiment all
//
// The recovery matrix sweeps load fraction x keyed-state size x failure
// type and reports recovery time plus output-latency p50/p99 per cell.
// Every cell runs with the audit plane armed (report schema 2): the
// per-cell audit_violations count must be zero for the report to
// validate, so each sweep doubles as a causal-consistency check under
// load. Legacy schema-0 baselines validate without the audit check.
//
//	clonos-bench -experiment matrix -matrix-out BENCH_recovery_matrix.json
//	clonos-bench -experiment matrix -matrix-grid smoke \
//	  -matrix-baseline BENCH_recovery_matrix.json -matrix-max-regress 3
//	  runs the tiny CI grid and fails on cell flips or median
//	  recovery/detection regressions.
//	clonos-bench -matrix-validate BENCH_recovery_matrix.json
//	  checks an existing report's schema (including the schema-2 audit
//	  verdict) without running anything.
//
// Observability:
//
//	clonos-bench -metrics-addr 127.0.0.1:9090 -experiment fig6a
//	  serves the running experiment's registry at /metrics (Prometheus
//	  text format), /metrics.json, /debug/vars, and /debug/pprof/.
//	clonos-bench -metrics-dump metrics.json -experiment fig5
//	  writes a JSON snapshot of the final registry on exit.
//	clonos-bench -bench-json results.json -experiment fig6a
//	  writes machine-readable results (throughput, recovery percentiles,
//	  per-phase breakdown) for regression diffing.
//	clonos-bench -record trace.jsonl -experiment fig6a
//	  streams tracer spans/events plus periodic registry samples to a
//	  JSONL flight recording; inspect with clonos-trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"clonos/internal/harness"
	"clonos/internal/obs"
)

func main() {
	experiment := flag.String("experiment", "all", "fig5 | fig6a | fig6b | fig6c | fig6d | table1 | mem | guarantees | dsd | matrix | all")
	parallelism := flag.Int("parallelism", 2, "per-operator parallelism")
	rate := flag.Int("rate", 0, "generator rate override (events/s)")
	duration := flag.Duration("duration", 0, "per-run duration override")
	queries := flag.String("queries", "", "comma-separated query subset for fig5 (default: all)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /metrics.json, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:9090)")
	metricsDump := flag.String("metrics-dump", "", "write a JSON snapshot of the final run's metrics to this file on exit")
	benchJSON := flag.String("bench-json", "", "write machine-readable experiment results to this file on exit")
	recordPath := flag.String("record", "", "write a JSONL flight recording (tracer spans/events + registry samples) to this file")
	recordSample := flag.Duration("record-sample", 250*time.Millisecond, "registry sampling interval for -record")
	matrixGrid := flag.String("matrix-grid", "full", "matrix grid size: full (2 loads x 2 states x 4 failures x 2 modes) | smoke (CI 2x2x2x2)")
	matrixModes := flag.String("matrix-modes", "", "comma-separated checkpoint-mode axis override (aligned,unaligned)")
	matrixOut := flag.String("matrix-out", "", "write the matrix sweep as a standalone baseline report to this file")
	matrixBaseline := flag.String("matrix-baseline", "", "compare the matrix sweep against this committed baseline and fail on recovery regressions")
	matrixMaxRegress := flag.Float64("matrix-max-regress", 3.0, "allowed median recovery/detection slowdown factor vs -matrix-baseline")
	matrixMaxUnsettled := flag.Int("matrix-max-unsettled", 1, "tolerated settled->unsettled cell flips vs -matrix-baseline (noisy-runner allowance)")
	matrixValidate := flag.String("matrix-validate", "", "validate an existing matrix report's schema and exit (no experiments run)")
	matrixRepeats := flag.Int("matrix-repeats", 0, "repeats per matrix cell override (median is reported)")
	flag.Parse()

	if *matrixValidate != "" {
		report, err := harness.LoadMatrixReport(*matrixValidate)
		if err == nil {
			err = harness.ValidateMatrixReport(report, 1)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "matrix validate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok (schema %d, %d cells)\n", *matrixValidate, report.Schema, len(report.Cells))
		return
	}

	var recorder *obs.Recorder
	if *recordPath != "" {
		f, err := os.Create(*recordPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flight recorder: %v\n", err)
			os.Exit(1)
		}
		recorder = obs.NewRecorder(f, obs.RecorderConfig{})
		harness.SetRecorder(recorder)
		recorder.StartSampling(harness.CurrentRegistry, *recordSample)
		defer func() {
			if err := recorder.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "flight recorder: %v\n", err)
			}
			if n := recorder.Dropped(); n > 0 {
				fmt.Fprintf(os.Stderr, "flight recorder: dropped %d records (queue overflow)\n", n)
			}
			f.Close()
		}()
	}

	if *metricsAddr != "" {
		srv, err := obs.StartServer(*metricsAddr, harness.CurrentRegistry, harness.CurrentTracer,
			func() *obs.Recorder { return recorder })
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", srv.Addr())
	}
	var report *harness.BenchReport
	if *benchJSON != "" {
		report = harness.NewBenchReport()
		report.Options["experiment"] = *experiment
		report.Options["parallelism"] = *parallelism
		if *rate > 0 {
			report.Options["rate"] = *rate
		}
		if *duration > 0 {
			report.Options["duration"] = duration.String()
		}
	}

	// Runs after the experiments; a failed dump fails the process so
	// scripts don't read success from a run whose snapshot was lost.
	dump := func() {
		if report != nil {
			if err := report.WriteFile(*benchJSON); err != nil {
				fmt.Fprintf(os.Stderr, "bench json: %v\n", err)
				os.Exit(1)
			}
		}
		if *metricsDump == "" {
			return
		}
		reg := harness.CurrentRegistry()
		if reg == nil {
			return
		}
		f, err := os.Create(*metricsDump)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics dump: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := reg.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "metrics dump: %v\n", err)
			os.Exit(1)
		}
	}

	w := os.Stdout
	run := func(name string, f func() error) {
		fmt.Fprintf(w, "\n==== %s ====\n", name)
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "(%s done in %s)\n", name, time.Since(start).Round(time.Second))
	}

	fig5 := func() error {
		opt := harness.DefaultFig5Options()
		opt.Parallelism = *parallelism
		if *rate > 0 {
			opt.Rate = *rate
		}
		if *duration > 0 {
			opt.Duration = *duration
		}
		if *queries != "" {
			opt.Queries = splitCSV(*queries)
		}
		rows, err := harness.Fig5(w, opt)
		if err == nil {
			report.Add("fig5", rows)
		}
		return err
	}
	fig6 := func(name, query string, vertex int32, rateOverride int) func() error {
		return func() error {
			opt := harness.DefaultFig6Options()
			opt.Parallelism = *parallelism
			if rateOverride > 0 {
				opt.Rate = rateOverride
			}
			if *rate > 0 {
				opt.Rate = *rate
			}
			if *duration > 0 {
				opt.Duration = *duration
			}
			res, err := harness.Fig6Single(w, query, vertex, opt)
			if err == nil {
				report.Add(name, harness.Fig6Summaries(res))
			}
			return err
		}
	}
	fig6multi := func(name string, concurrent bool) func() error {
		return func() error {
			opt := harness.DefaultFig6Options()
			if *rate > 0 {
				opt.Rate = *rate
				opt.MultiRate = *rate
			}
			if *duration > 0 {
				opt.Duration = *duration
			}
			res, err := harness.Fig6Multi(w, concurrent, opt)
			if err == nil {
				report.Add(name, harness.Fig6Summaries(res))
			}
			return err
		}
	}

	experiments := map[string]func() error{
		"fig5":   fig5,
		"fig6a":  fig6("fig6a", "Q3", 3, 0), // fail the Q3 join operator
		"fig6b":  fig6("fig6b", "Q8", 3, 0), // fail the Q8 windowed join
		"fig6c":  fig6multi("fig6c", false),
		"fig6d":  fig6multi("fig6d", true),
		"table1": func() error { harness.Table1(w); return nil },
		"mem": func() error {
			opt := harness.DefaultMemOptions()
			if *rate > 0 {
				opt.Rate = *rate
			}
			if *duration > 0 {
				opt.Duration = *duration
			}
			rows, err := harness.MemStudy(w, opt)
			if err == nil {
				report.Add("mem", rows)
			}
			return err
		},
		"guarantees": func() error {
			opt := harness.DefaultGuaranteeOptions()
			if *rate > 0 {
				opt.Rate = *rate
			}
			rows, err := harness.Guarantees(w, opt)
			if err == nil {
				report.Add("guarantees", rows)
			}
			return err
		},
		"dsd": func() error {
			opt := harness.DefaultDSDOptions()
			if *rate > 0 {
				opt.Rate = *rate
			}
			if *duration > 0 {
				opt.Duration = *duration
			}
			rows, err := harness.DSDSweep(w, opt)
			if err == nil {
				report.Add("dsd", rows)
			}
			return err
		},
		"matrix": func() error {
			var opt harness.MatrixOptions
			switch *matrixGrid {
			case "full":
				opt = harness.DefaultMatrixOptions()
			case "smoke":
				opt = harness.SmokeMatrixOptions()
			default:
				return fmt.Errorf("unknown -matrix-grid %q (want full or smoke)", *matrixGrid)
			}
			if *rate > 0 {
				opt.BaseRate = *rate
			}
			if *duration > 0 {
				opt.Duration = *duration
			}
			if *matrixRepeats > 0 {
				opt.Repeats = *matrixRepeats
			}
			if *matrixModes != "" {
				opt.Modes = strings.Split(*matrixModes, ",")
			}
			res, err := harness.RunMatrix(w, opt)
			if err != nil {
				return err
			}
			if err := harness.ValidateMatrixReport(res, len(res.Cells)); err != nil {
				return fmt.Errorf("matrix self-check: %w", err)
			}
			report.Add("matrix", res)
			if *matrixOut != "" {
				options := map[string]any{
					"grid":     *matrixGrid,
					"duration": opt.Duration.String(),
					"repeats":  opt.Repeats,
					"modes":    res.Modes,
				}
				if err := harness.WriteMatrixReport(*matrixOut, res, options); err != nil {
					return err
				}
			}
			if *matrixBaseline != "" {
				base, err := harness.LoadMatrixReport(*matrixBaseline)
				if err != nil {
					return err
				}
				if regs := harness.CompareMatrixBaseline(base, res, *matrixMaxRegress, *matrixMaxUnsettled); len(regs) > 0 {
					for _, r := range regs {
						fmt.Fprintf(os.Stderr, "matrix regression: %s\n", r)
					}
					return fmt.Errorf("%d matrix recovery regression(s) vs %s", len(regs), *matrixBaseline)
				}
				fmt.Fprintf(w, "matrix baseline check vs %s: ok\n", *matrixBaseline)
			}
			return nil
		},
	}

	if *experiment == "all" {
		for _, name := range []string{"table1", "fig5", "fig6a", "fig6b", "fig6c", "fig6d", "mem", "guarantees", "dsd"} {
			run(name, experiments[name])
		}
		dump()
		return
	}
	f, ok := experiments[*experiment]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	run(*experiment, f)
	dump()
}

func splitCSV(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ',' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
