package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"clonos/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

func readFixture(t *testing.T, name string) []obs.TraceRecord {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := obs.ReadTraceJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func checkGolden(t *testing.T, got, goldenName string) {
	t.Helper()
	golden := filepath.Join("testdata", goldenName)
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("report differs from %s (rerun with -update to rewrite):\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// TestAuditReportGolden pins the -audit report shape: verdict line,
// counter total from the last sample, ordered violation timeline,
// per-invariant and per-channel breakdowns, fingerprint attestations.
func TestAuditReportGolden(t *testing.T) {
	recs := readFixture(t, "audit_trace.jsonl")
	var buf bytes.Buffer
	summarizeAudit(&buf, recs)
	checkGolden(t, buf.String(), "audit_report.golden")
}

// TestSummaryAuditHint checks the default summary surfaces recorded
// violations prominently without -audit.
func TestSummaryAuditHint(t *testing.T) {
	recs := readFixture(t, "audit_trace.jsonl")
	var buf bytes.Buffer
	summarize(&buf, recs, 5, 2*time.Second)
	out := buf.String()
	if !strings.Contains(out, "AUDIT: 5 violation events recorded") {
		t.Fatalf("summary missing audit hint:\n%s", out)
	}
}

// TestAuditReportCleanRecording: a recording with no audit records
// renders the OK verdict and nothing else.
func TestAuditReportCleanRecording(t *testing.T) {
	recs := []obs.TraceRecord{
		{Type: obs.RecordEvent, Name: "task-live", TS: 1, Attrs: map[string]string{"task": "v0[0]"}},
	}
	var buf bytes.Buffer
	summarizeAudit(&buf, recs)
	out := buf.String()
	if !strings.HasPrefix(out, "audit plane: OK (0 violation events, 0 fingerprint attestations)") {
		t.Fatalf("unexpected clean report:\n%s", out)
	}
	if strings.Contains(out, "timeline") {
		t.Fatalf("clean report should have no timeline:\n%s", out)
	}
}
