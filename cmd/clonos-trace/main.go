// Command clonos-trace inspects JSONL flight recordings produced by
// clonos-bench -record or downloaded from a running job's /debug/trace
// endpoint.
//
// Usage:
//
//	clonos-trace trace.jsonl
//	  prints a human summary: checkpoint-epoch durations and the slowest
//	  epochs with per-phase breakdowns, alignment outliers, recovery
//	  spans, a causal-plane report (determinant/delta/in-flight/replay/
//	  dedup/latency-p99 families, with per-recovery deltas — the view to
//	  inspect a matrix run's flight recording with), stall events, and
//	  watermark stagnation between samples.
//	clonos-trace -top 10 trace.jsonl
//	  widens the outlier lists.
//	clonos-trace -audit trace.jsonl
//	  prints the audit-plane report instead: the verdict, the violation
//	  timeline (with per-invariant and per-channel replay-hash mismatch
//	  breakdowns), and every restore-time fingerprint attestation.
//	clonos-trace -chrome trace.json trace.jsonl
//	  converts the recording to Chrome trace_event JSON; open it in
//	  Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Reading "-" takes the recording from stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"clonos/internal/obs"
)

func main() {
	top := flag.Int("top", 5, "how many slowest epochs / alignment outliers to list")
	chrome := flag.String("chrome", "", "convert the recording to Chrome trace_event JSON at this path instead of summarizing")
	stallGap := flag.Duration("stall-gap", 2*time.Second, "report watermarks that stay flat across samples for longer than this")
	auditReport := flag.Bool("audit", false, "print the audit-plane report (violation timeline, fingerprint attestations, replay-hash mismatch breakdown) instead of the standard summary")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: clonos-trace [-top N] [-audit] [-chrome out.json] [-stall-gap 2s] <recording.jsonl | ->")
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if path := flag.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clonos-trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	recs, err := obs.ReadTraceJSONL(in)
	if err != nil {
		if len(recs) == 0 {
			fmt.Fprintf(os.Stderr, "clonos-trace: %v\n", err)
			os.Exit(1)
		}
		// A truncated tail (recorder killed mid-write) is expected in
		// post-mortem use; summarize what parsed.
		fmt.Fprintf(os.Stderr, "clonos-trace: warning: %v (summarizing %d records)\n", err, len(recs))
	}
	if len(recs) == 0 {
		fmt.Fprintln(os.Stderr, "clonos-trace: recording is empty")
		os.Exit(1)
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clonos-trace: %v\n", err)
			os.Exit(1)
		}
		if err := obs.WriteChromeTrace(f, recs); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "clonos-trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d records); open in ui.perfetto.dev or chrome://tracing\n", *chrome, len(recs))
		return
	}

	if *auditReport {
		summarizeAudit(os.Stdout, recs)
		return
	}
	summarize(os.Stdout, recs, *top, *stallGap)
}

// summarizeAudit renders the audit-plane report: the recording's
// verdict, the ordered violation timeline with per-invariant and
// per-channel replay-hash breakdowns, and every restore-time state
// fingerprint attestation. Violation events carry the attrs the runtime
// reporter attaches (task, invariant, channel, info); the counter family
// clonos_audit_violations_total rides along in samples and may exceed
// the event count — the per-channel reporter throttle goes quiet after
// a diverged stream's first violations while the counter keeps counting.
func summarizeAudit(w io.Writer, recs []obs.TraceRecord) {
	base := recs[0].TS
	var violations, fingerprints, samples []obs.TraceRecord
	for _, r := range recs {
		switch {
		case r.Type == obs.RecordEvent && r.Name == "audit-violation":
			violations = append(violations, r)
		case r.Type == obs.RecordEvent && r.Name == "audit-fingerprint":
			fingerprints = append(fingerprints, r)
		case r.Type == obs.RecordSample:
			samples = append(samples, r)
		}
	}
	sort.SliceStable(violations, func(i, j int) bool { return violations[i].TS < violations[j].TS })
	sort.SliceStable(fingerprints, func(i, j int) bool { return fingerprints[i].TS < fingerprints[j].TS })
	sort.Slice(samples, func(i, j int) bool { return samples[i].TS < samples[j].TS })

	verdict := "OK"
	if len(violations) > 0 {
		verdict = "VIOLATION"
	}
	fmt.Fprintf(w, "audit plane: %s (%d violation events, %d fingerprint attestations)\n",
		verdict, len(violations), len(fingerprints))

	// The counter total from the newest sample that carries the family.
	for i := len(samples) - 1; i >= 0; i-- {
		if total, ok := familySum(samples[i].Vals, "clonos_audit_violations_total"); ok {
			fmt.Fprintf(w, "  clonos_audit_violations_total=%s at last sample (counter keeps counting past the reporter throttle)\n",
				fmtVal(total))
			break
		}
	}

	if len(violations) > 0 {
		byInv := map[string]int{}
		mismatchByChan := map[string]int{}
		fmt.Fprintf(w, "  violation timeline:\n")
		for _, r := range violations {
			inv := r.Attrs["invariant"]
			byInv[inv]++
			if inv == "replay-hash-mismatch" {
				mismatchByChan[r.Attrs["channel"]]++
			}
			line := fmt.Sprintf("    t=%7s %-24s task=%-7s", rel(r.TS, base), inv, r.Attrs["task"])
			if ch := r.Attrs["channel"]; ch != "" {
				line += " ch=" + ch
			}
			if info := r.Attrs["info"]; info != "" {
				line += "  " + info
			}
			fmt.Fprintln(w, line)
		}
		fmt.Fprintf(w, "  by invariant:\n")
		for _, inv := range sortedKeys(byInv) {
			fmt.Fprintf(w, "    %-24s %d\n", inv, byInv[inv])
		}
		if len(mismatchByChan) > 0 {
			fmt.Fprintf(w, "  replay-hash mismatches by channel:\n")
			for _, ch := range sortedKeys(mismatchByChan) {
				fmt.Fprintf(w, "    %-12s %d\n", ch, mismatchByChan[ch])
			}
		}
	}

	if len(fingerprints) > 0 {
		fmt.Fprintf(w, "  fingerprint attestations (restore-time recomputation vs snapshot record):\n")
		for _, r := range fingerprints {
			fmt.Fprintf(w, "    t=%7s task=%-7s %s\n", rel(r.TS, base), r.Attrs["task"], r.Attrs["info"])
		}
	}
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func summarize(w io.Writer, recs []obs.TraceRecord, top int, stallGap time.Duration) {
	base := recs[0].TS
	end := base
	counts := map[string]int{}
	auditViolations := 0
	var checkpoints, recoveries, restarts []obs.TraceRecord
	var stalls []obs.TraceRecord
	var samples []obs.TraceRecord
	for _, r := range recs {
		counts[r.Type]++
		if r.TS > end {
			end = r.TS
		}
		if r.End > end {
			end = r.End
		}
		switch r.Type {
		case obs.RecordSpan:
			switch r.Name {
			case "checkpoint":
				checkpoints = append(checkpoints, r)
			case "recovery":
				recoveries = append(recoveries, r)
			case "global-restart":
				restarts = append(restarts, r)
			}
		case obs.RecordEvent:
			switch r.Name {
			case "task-stall", "alignment-stall", "epoch-stall", "alignment-superseded":
				stalls = append(stalls, r)
			case "audit-violation":
				auditViolations++
			}
		case obs.RecordSample:
			samples = append(samples, r)
		}
	}

	fmt.Fprintf(w, "recording: %d records (%d events, %d spans, %d samples) over %s\n",
		len(recs), counts[obs.RecordEvent], counts[obs.RecordSpan], counts[obs.RecordSample],
		time.Duration(end-base).Round(time.Millisecond))
	if auditViolations > 0 {
		fmt.Fprintf(w, "AUDIT: %d violation events recorded — rerun with -audit for the audit-plane report\n", auditViolations)
	}

	summarizeCheckpoints(w, checkpoints, base, top)
	summarizeRecoveries(w, recoveries, restarts, base)
	summarizeCausalPlane(w, samples, recoveries, base)
	summarizeStalls(w, stalls, base)
	summarizeWatermarks(w, samples, base, stallGap)
}

// causalFamilies are the causal-plane metric families the report
// summarizes: the recorded-sample view of what the determinant log, the
// in-flight log, replay, dedup, and the live latency gauge were doing.
var causalFamilies = []struct {
	name  string
	gauge bool // gauges report last/peak; counters report the final total
}{
	{"clonos_causal_determinants_total", false},
	{"clonos_causal_delta_entries_total", false},
	{"clonos_causal_delta_bytes_total", false},
	{"clonos_causal_log_entries", true},
	{"clonos_causal_main_log_floor", true},
	{"clonos_inflight_entries", true},
	{"clonos_inflight_spilled_bytes_total", false},
	{"clonos_inflight_truncation_floor", true},
	{"clonos_dedup_discarded_total", false},
	{"clonos_replay_served_total", false},
	{"clonos_replay_retries_total", false},
	{"clonos_standby_sync_lag", true},
	{"clonos_latency_p99_seconds", true},
}

// familySum adds every series of one metric family in a sample (a family
// key is either the bare name or name{labels}).
func familySum(vals map[string]float64, family string) (float64, bool) {
	var sum float64
	found := false
	for key, v := range vals {
		if key == family || strings.HasPrefix(key, family+"{") {
			sum += v
			found = true
		}
	}
	return sum, found
}

// summarizeCausalPlane reports the causal-plane families over the whole
// recording and correlates them with each recovery span: how many
// determinants the replay served, how much the dedup filter discarded,
// and where the live latency p99 sat once the task caught up. This is
// the report mode a matrix run is inspected with.
func summarizeCausalPlane(w io.Writer, samples, recoveries []obs.TraceRecord, base int64) {
	if len(samples) == 0 {
		return
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].TS < samples[j].TS })

	fmt.Fprintf(w, "\ncausal plane (sampled %d times):\n", len(samples))
	for _, fam := range causalFamilies {
		var last, peak float64
		found := false
		for _, s := range samples {
			v, ok := familySum(s.Vals, fam.name)
			if !ok {
				continue
			}
			found = true
			last = v
			if v > peak {
				peak = v
			}
		}
		if !found {
			continue
		}
		if fam.gauge {
			fmt.Fprintf(w, "  %-38s last=%-12s peak=%s\n", fam.name, fmtVal(last), fmtVal(peak))
		} else {
			fmt.Fprintf(w, "  %-38s total=%s\n", fam.name, fmtVal(last))
		}
	}

	if len(recoveries) == 0 {
		return
	}
	fmt.Fprintf(w, "  per-recovery deltas (sample closest before failure -> after catch-up):\n")
	for _, r := range recoveries {
		before := sampleAtOrBefore(samples, r.TS)
		after := sampleAtOrAfter(samples, r.End)
		if before == nil || after == nil {
			fmt.Fprintf(w, "    task %-6s t=%7s  (no samples bracket the span)\n", r.Attrs["task"], rel(r.TS, base))
			continue
		}
		delta := func(family string) float64 {
			b, _ := familySum(before.Vals, family)
			a, _ := familySum(after.Vals, family)
			return a - b
		}
		// Replay progress peaks mid-span; scan the span window for it.
		var replayPos, replayTotal float64
		for _, s := range samples {
			if s.TS < r.TS || s.TS > r.End {
				continue
			}
			if v, ok := familySum(s.Vals, "clonos_replay_position"); ok && v > replayPos {
				replayPos = v
			}
			if v, ok := familySum(s.Vals, "clonos_replay_total"); ok && v > replayTotal {
				replayTotal = v
			}
		}
		p99, _ := familySum(after.Vals, "clonos_latency_p99_seconds")
		fmt.Fprintf(w, "    task %-6s t=%7s  replay=%s/%s served=%s retries=%s dedup-discarded=%s determinants+%s p99-after=%.0fms\n",
			r.Attrs["task"], rel(r.TS, base),
			fmtVal(replayPos), fmtVal(replayTotal),
			fmtVal(delta("clonos_replay_served_total")), fmtVal(delta("clonos_replay_retries_total")),
			fmtVal(delta("clonos_dedup_discarded_total")), fmtVal(delta("clonos_causal_determinants_total")),
			p99*1000)
	}
}

// sampleAtOrBefore returns the latest sample at or before ts (nil when
// the recording starts later); samples must be sorted by TS.
func sampleAtOrBefore(samples []obs.TraceRecord, ts int64) *obs.TraceRecord {
	var out *obs.TraceRecord
	for i := range samples {
		if samples[i].TS > ts {
			break
		}
		out = &samples[i]
	}
	return out
}

// sampleAtOrAfter returns the earliest sample at or after ts.
func sampleAtOrAfter(samples []obs.TraceRecord, ts int64) *obs.TraceRecord {
	for i := range samples {
		if samples[i].TS >= ts {
			return &samples[i]
		}
	}
	return nil
}

// fmtVal renders a metric value compactly (counters are integral).
func fmtVal(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}

// epochStats is the derived timing of one checkpoint-epoch span.
type epochStats struct {
	rec     obs.TraceRecord
	aborted string // abort reason, "" when completed
	// alignment is first-barrier -> last align-complete; zero when the
	// epoch never reached alignment (or had nothing to align).
	alignment time.Duration
	// persist / acks measure trigger -> last snapshot / last ack.
	persist, acks time.Duration
}

func newEpochStats(r obs.TraceRecord) epochStats {
	st := epochStats{rec: r, aborted: r.Attrs["aborted"]}
	firstBarrier, haveBarrier := r.Mark("first-barrier")
	var lastAlign, lastSnap, lastAck int64
	for _, m := range r.Marks {
		switch {
		case strings.HasPrefix(m.Name, "align-complete:"):
			if m.At > lastAlign {
				lastAlign = m.At
			}
		case strings.HasPrefix(m.Name, "snapshot-persisted:"):
			if m.At > lastSnap {
				lastSnap = m.At
			}
		case strings.HasPrefix(m.Name, "ack:"):
			if m.At > lastAck {
				lastAck = m.At
			}
		}
	}
	if haveBarrier && lastAlign > firstBarrier {
		st.alignment = time.Duration(lastAlign - firstBarrier)
	}
	if lastSnap > r.TS {
		st.persist = time.Duration(lastSnap - r.TS)
	}
	if lastAck > r.TS {
		st.acks = time.Duration(lastAck - r.TS)
	}
	return st
}

func summarizeCheckpoints(w io.Writer, spans []obs.TraceRecord, base int64, top int) {
	fmt.Fprintf(w, "\ncheckpoint epochs: %d\n", len(spans))
	if len(spans) == 0 {
		return
	}
	var stats []epochStats
	var durs []time.Duration
	abortReasons := map[string]int{}
	for _, r := range spans {
		st := newEpochStats(r)
		stats = append(stats, st)
		if st.aborted != "" {
			abortReasons[st.aborted]++
			continue
		}
		durs = append(durs, r.Duration())
	}
	if len(abortReasons) > 0 {
		var parts []string
		for reason, n := range abortReasons {
			parts = append(parts, fmt.Sprintf("%s=%d", reason, n))
		}
		sort.Strings(parts)
		fmt.Fprintf(w, "  aborted: %s\n", strings.Join(parts, " "))
	}
	if len(durs) > 0 {
		fmt.Fprintf(w, "  completed %d: duration p50=%s p99=%s max=%s\n",
			len(durs), durPercentile(durs, 0.5), durPercentile(durs, 0.99), durPercentile(durs, 1))
	}

	slowest := append([]epochStats(nil), stats...)
	sort.Slice(slowest, func(i, j int) bool { return slowest[i].rec.Duration() > slowest[j].rec.Duration() })
	fmt.Fprintf(w, "  slowest epochs:\n")
	for i, st := range slowest {
		if i >= top {
			break
		}
		status := "complete"
		if st.aborted != "" {
			status = "aborted:" + st.aborted
		}
		fmt.Fprintf(w, "    cp %-4s t=%7s  total=%-9s align=%-9s persist=%-9s acks=%-9s %s\n",
			st.rec.Attrs["cp"], rel(st.rec.TS, base),
			fmtD(st.rec.Duration()), fmtD(st.alignment), fmtD(st.persist), fmtD(st.acks), status)
	}

	outliers := append([]epochStats(nil), stats...)
	sort.Slice(outliers, func(i, j int) bool { return outliers[i].alignment > outliers[j].alignment })
	if len(outliers) > 0 && outliers[0].alignment > 0 {
		fmt.Fprintf(w, "  alignment outliers (first-barrier -> last align-complete):\n")
		for i, st := range outliers {
			if i >= top || st.alignment == 0 {
				break
			}
			fmt.Fprintf(w, "    cp %-4s t=%7s  align=%s\n", st.rec.Attrs["cp"], rel(st.rec.TS, base), fmtD(st.alignment))
		}
	}
}

func summarizeRecoveries(w io.Writer, recoveries, restarts []obs.TraceRecord, base int64) {
	fmt.Fprintf(w, "\nrecovery spans: %d local, %d global restarts\n", len(recoveries), len(restarts))
	for _, r := range recoveries {
		fmt.Fprintf(w, "  task %-6s t=%7s  total=%s  %s\n",
			r.Attrs["task"], rel(r.TS, base), fmtD(r.Duration()), fmtRecordPhases(r))
	}
	for _, r := range restarts {
		fmt.Fprintf(w, "  global restart (%s) t=%7s total=%s\n", r.Attrs["reason"], rel(r.TS, base), fmtD(r.Duration()))
	}
}

func summarizeStalls(w io.Writer, stalls []obs.TraceRecord, base int64) {
	fmt.Fprintf(w, "\nstall / supersede events: %d\n", len(stalls))
	for _, r := range stalls {
		line := fmt.Sprintf("  %-21s t=%7s task=%s", r.Name, rel(r.TS, base), r.Attrs["task"])
		if info := r.Attrs["info"]; info != "" {
			line += "  " + info
		}
		fmt.Fprintln(w, line)
	}
}

// summarizeWatermarks scans the sampled clonos_task_watermark_ms series
// for stretches where a task's emitted watermark did not advance between
// consecutive samples for longer than gap — the recorded-data view of
// what the live stall watchdog detects.
func summarizeWatermarks(w io.Writer, samples []obs.TraceRecord, base int64, gap time.Duration) {
	if len(samples) < 2 {
		return
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].TS < samples[j].TS })
	type flat struct {
		fromTS, toTS int64
		val          float64
	}
	cur := map[string]*flat{}  // open flat stretch per series
	worst := map[string]flat{} // longest stretch per series
	for _, s := range samples {
		for key, v := range s.Vals {
			if !strings.HasPrefix(key, "clonos_task_watermark_ms{") {
				continue
			}
			c := cur[key]
			if c == nil || c.val != v {
				cur[key] = &flat{fromTS: s.TS, toTS: s.TS, val: v}
				continue
			}
			c.toTS = s.TS
			if best, ok := worst[key]; !ok || c.toTS-c.fromTS > best.toTS-best.fromTS {
				worst[key] = *c
			}
		}
	}
	var keys []string
	for key, f := range worst {
		if time.Duration(f.toTS-f.fromTS) > gap {
			keys = append(keys, key)
		}
	}
	fmt.Fprintf(w, "\nwatermark stagnation (flat > %s between samples): %d series\n", gap, len(keys))
	sort.Strings(keys)
	for _, key := range keys {
		f := worst[key]
		fmt.Fprintf(w, "  %s flat for %s (t=%s..%s)\n",
			key, time.Duration(f.toTS-f.fromTS).Round(time.Millisecond), rel(f.fromTS, base), rel(f.toTS, base))
	}
}

func fmtRecordPhases(r obs.TraceRecord) string {
	var parts []string
	for _, p := range r.Phases() {
		parts = append(parts, fmt.Sprintf("%s=%s", p.Name, fmtD(p.Dur)))
	}
	return strings.Join(parts, " ")
}

func fmtD(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(100 * time.Microsecond).String()
}

// rel renders an absolute unix-nano timestamp as seconds since the
// recording started.
func rel(ts, base int64) string {
	return fmt.Sprintf("%.2fs", time.Duration(ts-base).Seconds())
}

func durPercentile(durs []time.Duration, q float64) time.Duration {
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx].Round(100 * time.Microsecond)
}
