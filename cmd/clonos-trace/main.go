// Command clonos-trace inspects JSONL flight recordings produced by
// clonos-bench -record or downloaded from a running job's /debug/trace
// endpoint.
//
// Usage:
//
//	clonos-trace trace.jsonl
//	  prints a human summary: checkpoint-epoch durations and the slowest
//	  epochs with per-phase breakdowns, alignment outliers, recovery
//	  spans, stall events, and watermark stagnation between samples.
//	clonos-trace -top 10 trace.jsonl
//	  widens the outlier lists.
//	clonos-trace -chrome trace.json trace.jsonl
//	  converts the recording to Chrome trace_event JSON; open it in
//	  Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Reading "-" takes the recording from stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"clonos/internal/obs"
)

func main() {
	top := flag.Int("top", 5, "how many slowest epochs / alignment outliers to list")
	chrome := flag.String("chrome", "", "convert the recording to Chrome trace_event JSON at this path instead of summarizing")
	stallGap := flag.Duration("stall-gap", 2*time.Second, "report watermarks that stay flat across samples for longer than this")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: clonos-trace [-top N] [-chrome out.json] [-stall-gap 2s] <recording.jsonl | ->")
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if path := flag.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clonos-trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	recs, err := obs.ReadTraceJSONL(in)
	if err != nil {
		if len(recs) == 0 {
			fmt.Fprintf(os.Stderr, "clonos-trace: %v\n", err)
			os.Exit(1)
		}
		// A truncated tail (recorder killed mid-write) is expected in
		// post-mortem use; summarize what parsed.
		fmt.Fprintf(os.Stderr, "clonos-trace: warning: %v (summarizing %d records)\n", err, len(recs))
	}
	if len(recs) == 0 {
		fmt.Fprintln(os.Stderr, "clonos-trace: recording is empty")
		os.Exit(1)
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clonos-trace: %v\n", err)
			os.Exit(1)
		}
		if err := obs.WriteChromeTrace(f, recs); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "clonos-trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d records); open in ui.perfetto.dev or chrome://tracing\n", *chrome, len(recs))
		return
	}

	summarize(os.Stdout, recs, *top, *stallGap)
}

func summarize(w io.Writer, recs []obs.TraceRecord, top int, stallGap time.Duration) {
	base := recs[0].TS
	end := base
	counts := map[string]int{}
	var checkpoints, recoveries, restarts []obs.TraceRecord
	var stalls []obs.TraceRecord
	var samples []obs.TraceRecord
	for _, r := range recs {
		counts[r.Type]++
		if r.TS > end {
			end = r.TS
		}
		if r.End > end {
			end = r.End
		}
		switch r.Type {
		case obs.RecordSpan:
			switch r.Name {
			case "checkpoint":
				checkpoints = append(checkpoints, r)
			case "recovery":
				recoveries = append(recoveries, r)
			case "global-restart":
				restarts = append(restarts, r)
			}
		case obs.RecordEvent:
			switch r.Name {
			case "task-stall", "alignment-stall", "epoch-stall", "alignment-superseded":
				stalls = append(stalls, r)
			}
		case obs.RecordSample:
			samples = append(samples, r)
		}
	}

	fmt.Fprintf(w, "recording: %d records (%d events, %d spans, %d samples) over %s\n",
		len(recs), counts[obs.RecordEvent], counts[obs.RecordSpan], counts[obs.RecordSample],
		time.Duration(end-base).Round(time.Millisecond))

	summarizeCheckpoints(w, checkpoints, base, top)
	summarizeRecoveries(w, recoveries, restarts, base)
	summarizeStalls(w, stalls, base)
	summarizeWatermarks(w, samples, base, stallGap)
}

// epochStats is the derived timing of one checkpoint-epoch span.
type epochStats struct {
	rec     obs.TraceRecord
	aborted string // abort reason, "" when completed
	// alignment is first-barrier -> last align-complete; zero when the
	// epoch never reached alignment (or had nothing to align).
	alignment time.Duration
	// persist / acks measure trigger -> last snapshot / last ack.
	persist, acks time.Duration
}

func newEpochStats(r obs.TraceRecord) epochStats {
	st := epochStats{rec: r, aborted: r.Attrs["aborted"]}
	firstBarrier, haveBarrier := r.Mark("first-barrier")
	var lastAlign, lastSnap, lastAck int64
	for _, m := range r.Marks {
		switch {
		case strings.HasPrefix(m.Name, "align-complete:"):
			if m.At > lastAlign {
				lastAlign = m.At
			}
		case strings.HasPrefix(m.Name, "snapshot-persisted:"):
			if m.At > lastSnap {
				lastSnap = m.At
			}
		case strings.HasPrefix(m.Name, "ack:"):
			if m.At > lastAck {
				lastAck = m.At
			}
		}
	}
	if haveBarrier && lastAlign > firstBarrier {
		st.alignment = time.Duration(lastAlign - firstBarrier)
	}
	if lastSnap > r.TS {
		st.persist = time.Duration(lastSnap - r.TS)
	}
	if lastAck > r.TS {
		st.acks = time.Duration(lastAck - r.TS)
	}
	return st
}

func summarizeCheckpoints(w io.Writer, spans []obs.TraceRecord, base int64, top int) {
	fmt.Fprintf(w, "\ncheckpoint epochs: %d\n", len(spans))
	if len(spans) == 0 {
		return
	}
	var stats []epochStats
	var durs []time.Duration
	abortReasons := map[string]int{}
	for _, r := range spans {
		st := newEpochStats(r)
		stats = append(stats, st)
		if st.aborted != "" {
			abortReasons[st.aborted]++
			continue
		}
		durs = append(durs, r.Duration())
	}
	if len(abortReasons) > 0 {
		var parts []string
		for reason, n := range abortReasons {
			parts = append(parts, fmt.Sprintf("%s=%d", reason, n))
		}
		sort.Strings(parts)
		fmt.Fprintf(w, "  aborted: %s\n", strings.Join(parts, " "))
	}
	if len(durs) > 0 {
		fmt.Fprintf(w, "  completed %d: duration p50=%s p99=%s max=%s\n",
			len(durs), durPercentile(durs, 0.5), durPercentile(durs, 0.99), durPercentile(durs, 1))
	}

	slowest := append([]epochStats(nil), stats...)
	sort.Slice(slowest, func(i, j int) bool { return slowest[i].rec.Duration() > slowest[j].rec.Duration() })
	fmt.Fprintf(w, "  slowest epochs:\n")
	for i, st := range slowest {
		if i >= top {
			break
		}
		status := "complete"
		if st.aborted != "" {
			status = "aborted:" + st.aborted
		}
		fmt.Fprintf(w, "    cp %-4s t=%7s  total=%-9s align=%-9s persist=%-9s acks=%-9s %s\n",
			st.rec.Attrs["cp"], rel(st.rec.TS, base),
			fmtD(st.rec.Duration()), fmtD(st.alignment), fmtD(st.persist), fmtD(st.acks), status)
	}

	outliers := append([]epochStats(nil), stats...)
	sort.Slice(outliers, func(i, j int) bool { return outliers[i].alignment > outliers[j].alignment })
	if len(outliers) > 0 && outliers[0].alignment > 0 {
		fmt.Fprintf(w, "  alignment outliers (first-barrier -> last align-complete):\n")
		for i, st := range outliers {
			if i >= top || st.alignment == 0 {
				break
			}
			fmt.Fprintf(w, "    cp %-4s t=%7s  align=%s\n", st.rec.Attrs["cp"], rel(st.rec.TS, base), fmtD(st.alignment))
		}
	}
}

func summarizeRecoveries(w io.Writer, recoveries, restarts []obs.TraceRecord, base int64) {
	fmt.Fprintf(w, "\nrecovery spans: %d local, %d global restarts\n", len(recoveries), len(restarts))
	for _, r := range recoveries {
		fmt.Fprintf(w, "  task %-6s t=%7s  total=%s  %s\n",
			r.Attrs["task"], rel(r.TS, base), fmtD(r.Duration()), fmtRecordPhases(r))
	}
	for _, r := range restarts {
		fmt.Fprintf(w, "  global restart (%s) t=%7s total=%s\n", r.Attrs["reason"], rel(r.TS, base), fmtD(r.Duration()))
	}
}

func summarizeStalls(w io.Writer, stalls []obs.TraceRecord, base int64) {
	fmt.Fprintf(w, "\nstall / supersede events: %d\n", len(stalls))
	for _, r := range stalls {
		line := fmt.Sprintf("  %-21s t=%7s task=%s", r.Name, rel(r.TS, base), r.Attrs["task"])
		if info := r.Attrs["info"]; info != "" {
			line += "  " + info
		}
		fmt.Fprintln(w, line)
	}
}

// summarizeWatermarks scans the sampled clonos_task_watermark_ms series
// for stretches where a task's emitted watermark did not advance between
// consecutive samples for longer than gap — the recorded-data view of
// what the live stall watchdog detects.
func summarizeWatermarks(w io.Writer, samples []obs.TraceRecord, base int64, gap time.Duration) {
	if len(samples) < 2 {
		return
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].TS < samples[j].TS })
	type flat struct {
		fromTS, toTS int64
		val          float64
	}
	cur := map[string]*flat{}  // open flat stretch per series
	worst := map[string]flat{} // longest stretch per series
	for _, s := range samples {
		for key, v := range s.Vals {
			if !strings.HasPrefix(key, "clonos_task_watermark_ms{") {
				continue
			}
			c := cur[key]
			if c == nil || c.val != v {
				cur[key] = &flat{fromTS: s.TS, toTS: s.TS, val: v}
				continue
			}
			c.toTS = s.TS
			if best, ok := worst[key]; !ok || c.toTS-c.fromTS > best.toTS-best.fromTS {
				worst[key] = *c
			}
		}
	}
	var keys []string
	for key, f := range worst {
		if time.Duration(f.toTS-f.fromTS) > gap {
			keys = append(keys, key)
		}
	}
	fmt.Fprintf(w, "\nwatermark stagnation (flat > %s between samples): %d series\n", gap, len(keys))
	sort.Strings(keys)
	for _, key := range keys {
		f := worst[key]
		fmt.Fprintf(w, "  %s flat for %s (t=%s..%s)\n",
			key, time.Duration(f.toTS-f.fromTS).Round(time.Millisecond), rel(f.fromTS, base), rel(f.toTS, base))
	}
}

func fmtRecordPhases(r obs.TraceRecord) string {
	var parts []string
	for _, p := range r.Phases() {
		parts = append(parts, fmt.Sprintf("%s=%s", p.Name, fmtD(p.Dur)))
	}
	return strings.Join(parts, " ")
}

func fmtD(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(100 * time.Microsecond).String()
}

// rel renders an absolute unix-nano timestamp as seconds since the
// recording started.
func rel(ts, base int64) string {
	return fmt.Sprintf("%.2fs", time.Duration(ts-base).Seconds())
}

func durPercentile(durs []time.Duration, q float64) time.Duration {
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx].Round(100 * time.Microsecond)
}
