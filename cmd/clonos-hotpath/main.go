// Command clonos-hotpath benchmarks the zero-copy data-path hot loop —
// serialize → dispatch → transmit → deserialize → decode — and writes a
// machine-readable baseline so the perf trajectory can be tracked across
// PRs (BENCH_hotpath.json; see `make bench-json`).
//
// Usage:
//
//	clonos-hotpath                      # print the table
//	clonos-hotpath -out BENCH_hotpath.json
//	clonos-hotpath -scenario int64     # run one scenario only
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"clonos/internal/harness"
	"clonos/internal/hotbench"
)

func main() {
	out := flag.String("out", "", "write results as JSON to this path")
	scenario := flag.String("scenario", "", "run only the named scenario")
	flag.Parse()

	var results []hotbench.Result
	for _, sc := range hotbench.Scenarios() {
		if *scenario != "" && sc.Name != *scenario {
			continue
		}
		fmt.Fprintf(os.Stderr, "benchmarking %s...\n", sc.Name)
		results = append(results, hotbench.Measure(sc))
	}
	for _, sc := range hotbench.SnapshotScenarios() {
		if *scenario != "" && sc.Name != *scenario {
			continue
		}
		fmt.Fprintf(os.Stderr, "benchmarking %s...\n", sc.Name)
		results = append(results, hotbench.MeasureSnapshot(sc))
	}
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "no scenario matches %q\n", *scenario)
		os.Exit(2)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tns/elem\telems/s\tMB/s\tallocs/elem\tscratch%\tcopied%")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%.1f\t%.0f\t%.1f\t%.2f\t%.3f%%\t%.3f%%\n",
			r.Scenario, r.NsPerElem, r.ElemsPerSec, r.MBPerSec, r.AllocsPerOp,
			100*r.ScratchFraction, 100*r.CopiedFraction)
	}
	tw.Flush()

	if *out != "" {
		rep := harness.NewBenchReport()
		rep.Add("hotpath", results)
		if err := rep.WriteFile(*out); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}
