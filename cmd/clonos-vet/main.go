// Command clonos-vet is the repo's multichecker: it runs the
// internal/lint analyzers (bufown, mainthread, snapcov, detflow,
// crashpoint, nosleepwait, gobcodec) over the requested packages and
// exits nonzero on any diagnostic.
//
// Usage:
//
//	clonos-vet [-list] [-json] [patterns...]   (default pattern: ./...)
//
// Run it via `make lint`. Diagnostics print as
// file:line:col: message (analyzer); with -json the same findings are
// additionally written to stdout as the JSON array documented in
// internal/lint/findings (human-readable lines move to stderr). Suppress
// an individual line — after review, see DESIGN.md "Static invariants" —
// with `//clonos:allow <analyzer>`.
package main

import (
	"flag"
	"fmt"
	"go/types"
	"os"
	"sort"

	"clonos/internal/lint/analysis"
	"clonos/internal/lint/bufown"
	"clonos/internal/lint/crashpoint"
	"clonos/internal/lint/detflow"
	"clonos/internal/lint/findings"
	"clonos/internal/lint/gobcodec"
	"clonos/internal/lint/load"
	"clonos/internal/lint/mainthread"
	"clonos/internal/lint/nosleepwait"
	"clonos/internal/lint/snapcov"
)

var suite = []*analysis.Analyzer{
	bufown.Analyzer,
	mainthread.Analyzer,
	snapcov.Analyzer,
	detflow.Analyzer,
	crashpoint.Analyzer,
	nosleepwait.Analyzer,
	gobcodec.Analyzer,
}

func main() {
	listOnly := flag.Bool("list", false, "list the analyzers and exit")
	noTests := flag.Bool("notests", false, "skip _test.go files (crashpoint and nosleepwait lose coverage)")
	jsonOut := flag.Bool("json", false, "write findings to stdout as JSON (see internal/lint/findings); human-readable lines go to stderr")
	flag.Parse()
	if *listOnly {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset, pkgs, err := load.Load(load.Config{Dir: ".", Tests: !*noTests}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clonos-vet:", err)
		os.Exit(2)
	}
	pkgs = topoSort(pkgs)

	var diags []analysis.Diagnostic
	for _, a := range suite {
		facts := map[types.Object]any{}
		var passes []*analysis.Pass
		for _, p := range pkgs {
			pass := analysis.NewPass(a, fset, p.Files, p.Types, p.Info, p.TestFiles, facts,
				func(d analysis.Diagnostic) { diags = append(diags, d) })
			res, err := a.Run(pass)
			if err != nil {
				fmt.Fprintf(os.Stderr, "clonos-vet: %s: %s: %v\n", a.Name, p.ImportPath, err)
				os.Exit(2)
			}
			pass.Result = res
			passes = append(passes, pass)
		}
		if a.Finish != nil {
			if err := a.Finish(passes); err != nil {
				fmt.Fprintf(os.Stderr, "clonos-vet: %s: %v\n", a.Name, err)
				os.Exit(2)
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	human := os.Stdout
	if *jsonOut {
		human = os.Stderr
	}
	for _, d := range diags {
		fmt.Fprintf(human, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer.Name)
	}
	if *jsonOut {
		fs := make([]findings.Finding, 0, len(diags))
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			fs = append(fs, findings.Finding{
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer.Name,
				Message:  d.Message,
			})
		}
		findings.Sort(fs)
		if err := findings.Encode(os.Stdout, fs); err != nil {
			fmt.Fprintln(os.Stderr, "clonos-vet: encoding findings:", err)
			os.Exit(2)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// topoSort orders packages dependencies-first so annotation facts written
// by a declaring package's pass are visible to its importers' passes
// (go list pattern output is lexical, which puts internal/job before
// internal/netstack).
func topoSort(pkgs []*load.Package) []*load.Package {
	byPath := map[string]*load.Package{}
	for _, p := range pkgs {
		byPath[p.Types.Path()] = p
	}
	seen := map[*load.Package]bool{}
	var out []*load.Package
	var visit func(p *load.Package)
	visit = func(p *load.Package) {
		if seen[p] {
			return
		}
		seen[p] = true
		for _, imp := range p.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				visit(dep)
			}
		}
		out = append(out, p)
	}
	for _, p := range pkgs {
		if !p.XTest {
			visit(p)
		}
	}
	for _, p := range pkgs {
		visit(p) // XTest packages after their subjects
	}
	return out
}
