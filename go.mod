module clonos

go 1.22
