package clonos

// Benchmarks regenerating the paper's evaluation, one per table/figure
// (shortened: the full sweeps live in cmd/clonos-bench):
//
//	BenchmarkFig5OverheadNexmark    — Figure 5 + §7.3 (overhead, subset of queries)
//	BenchmarkFig6SingleFailureQ3    — Figures 6a/6e
//	BenchmarkFig6SingleFailureQ8    — Figures 6b/6f
//	BenchmarkFig6MultipleFailures   — Figures 6c/6g
//	BenchmarkFig6ConcurrentFailures — Figures 6d/6h
//	BenchmarkSpillPolicies          — §7.5 memory/spill study
//	BenchmarkDSDSweep               — §5.4 determinant-sharing-depth ablation
//
// plus micro-benchmarks of the fault-tolerance hot paths (determinant
// encoding, delta piggybacking, the NEXMark codec, buffer serialization,
// in-flight log append/truncate).

import (
	"fmt"
	"io"
	"testing"
	"time"

	"clonos/internal/buffer"
	"clonos/internal/causal"
	"clonos/internal/harness"
	"clonos/internal/inflight"
	"clonos/internal/job"
	"clonos/internal/kafkasim"
	"clonos/internal/netstack"
	"clonos/internal/nexmark"
	"clonos/internal/services"
	"clonos/internal/synthetic"
	"clonos/internal/types"
)

// benchFig5Queries is the Figure 5 subset exercised by the bench (the
// full 12-query sweep runs via cmd/clonos-bench -experiment fig5).
var benchFig5Queries = []string{"Q1", "Q3", "Q8"}

func BenchmarkFig5OverheadNexmark(b *testing.B) {
	for _, q := range benchFig5Queries {
		b.Run(q, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := harness.DefaultFig5Options()
				opt.Queries = []string{q}
				opt.Duration = 2500 * time.Millisecond
				rows, err := harness.Fig5(io.Discard, opt)
				if err != nil {
					b.Fatal(err)
				}
				r := rows[0]
				b.ReportMetric(r.Flink, "flink_rec/s")
				b.ReportMetric(r.RelDSD1, "rel_dsd1")
				b.ReportMetric(r.RelDSDFull, "rel_dsdfull")
				b.ReportMetric(float64(r.LatP50DSD1), "p50ms_dsd1")
			}
		})
	}
}

func benchFig6Single(b *testing.B, query string, failVertex int32) {
	for i := 0; i < b.N; i++ {
		opt := harness.DefaultFig6Options()
		opt.Duration = 5 * time.Second
		results, err := harness.Fig6Single(io.Discard, query, failVertex, opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Summary.RecoveryOK {
				b.ReportMetric(float64(r.Summary.Recovery.Milliseconds()), r.System+"_recovery_ms")
			}
			b.ReportMetric(float64(r.Summary.ThroughputGap.Milliseconds()), r.System+"_gap_ms")
		}
	}
}

func BenchmarkFig6SingleFailureQ3(b *testing.B) { benchFig6Single(b, "Q3", 3) }

func BenchmarkFig6SingleFailureQ8(b *testing.B) { benchFig6Single(b, "Q8", 3) }

func benchFig6Multi(b *testing.B, concurrent bool) {
	for i := 0; i < b.N; i++ {
		opt := harness.DefaultFig6Options()
		opt.Duration = 6 * time.Second
		results, err := harness.Fig6Multi(io.Discard, concurrent, opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			b.ReportMetric(float64(r.Summary.ThroughputGap.Milliseconds()), r.System+"_gap_ms")
			b.ReportMetric(float64(r.Run.SinkCount), r.System+"_records")
		}
	}
}

func BenchmarkFig6MultipleFailures(b *testing.B) { benchFig6Multi(b, false) }

func BenchmarkFig6ConcurrentFailures(b *testing.B) { benchFig6Multi(b, true) }

func BenchmarkSpillPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := harness.DefaultMemOptions()
		opt.Duration = 2 * time.Second
		opt.PoolSizes = []int{64}
		rows, err := harness.MemStudy(io.Discard, opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Throughput, fmt.Sprintf("%s_rec/s", r.Policy))
		}
	}
}

func BenchmarkDSDSweep(b *testing.B) {
	syn := synthetic.DefaultConfig()
	syn.Depth = 4
	for _, dsd := range []int{1, 2, 0} { // 0 = full
		name := fmt.Sprintf("dsd=%d", dsd)
		if dsd == 0 {
			name = "dsd=full"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := job.DefaultConfig()
				cfg.Mode = job.ModeClonos
				cfg.DSD = dsd
				cfg.Standby = false
				res, err := harness.Run(harness.RunSpec{
					Name:      name,
					Cfg:       cfg,
					SinkDedup: true,
					NewTopic:  func() *kafkasim.Topic { return kafkasim.NewTopic("syn", syn.Parallelism*2) },
					Build: func(topic *kafkasim.Topic, sink *kafkasim.SinkTopic) (*job.Graph, error) {
						return synthetic.Build(topic, sink, syn), nil
					},
					StartDriver: func(topic *kafkasim.Topic) func() {
						d := synthetic.Drive(topic, syn, 60000, 0)
						d.Start()
						return d.Stop
					},
					Duration: 2500 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(harness.SteadyThroughput(res.Samples, 0.3), "rec/s")
			}
		})
	}
}

// --- micro-benchmarks of the fault-tolerance hot paths ---

func BenchmarkDeterminantEncode(b *testing.B) {
	d := causal.Determinant{Kind: causal.KindTimer, Handler: 3, Key: 12345, When: 1_700_000_000_000, Offset: 42}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = d.Append(buf[:0])
	}
	_ = buf
}

func BenchmarkDeltaEncodeDecode(b *testing.B) {
	m := causal.NewManager(types.TaskID{Vertex: 1}, 1)
	ch := types.ChannelID{Edge: 1}
	m.StartEpochMain(1)
	for i := 0; i < 64; i++ {
		m.AppendOrder(int32(i % 4))
		m.AppendTimestamp(int64(i))
		m.AppendBufferSize(ch, 32768)
	}
	delta := m.DeltaFor(ch)
	if delta == nil {
		b.Fatal("empty delta")
	}
	b.SetBytes(int64(len(delta)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := causal.DecodeDelta(delta); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNexmarkEventCodec(b *testing.B) {
	cfg := nexmark.DefaultGeneratorConfig(1)
	events := make([]nexmark.Event, 128)
	for i := range events {
		events[i] = nexmark.GenEvent(cfg, int64(i), int64(i))
	}
	c := nexmark.EventCodec{}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = c.EncodeAppend(buf[:0], events[i%len(events)])
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChannelWriterThroughput(b *testing.B) {
	pool := buffer.NewPool(4, 32*1024)
	w := netstack.NewChannelWriter(pool, nexmark.ResultCodec{}, func(buf *buffer.Buffer) error {
		pool.Put(buf)
		return nil
	})
	r := nexmark.Result{A: 7, B: 1234, C: 3.14, S: "label", T: 99}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.WriteElement(types.Record(uint64(i), int64(i), r)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInFlightAppendTruncate(b *testing.B) {
	pool := buffer.NewPool(64, 4096)
	log, err := inflight.NewLog(types.ChannelID{Edge: 1}, pool, inflight.Config{Policy: inflight.PolicyInMemory, Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close()
	b.ReportAllocs()
	seq := uint64(1)
	for i := 0; i < b.N; i++ {
		epoch := types.EpochID(i/32 + 1)
		if i%32 == 0 {
			log.StartEpoch(epoch)
			if epoch > 1 {
				log.Truncate(epoch - 1)
			}
		}
		buf := pool.Get()
		buf.Data = append(buf.Data, make([]byte, 512)...)
		buf.Seq = seq
		buf.Epoch = epoch
		seq++
		if err := log.Append(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTimestampServiceCached(b *testing.B) {
	s := services.New(services.Config{TimestampGranularityMs: 1}, noopSvcLogger{}, nil, func(int64) {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.CurrentTimeMillis(); err != nil {
			b.Fatal(err)
		}
	}
}

type noopSvcLogger struct{}

func (noopSvcLogger) AppendTimestamp(int64)        {}
func (noopSvcLogger) AppendRNG(int64)              {}
func (noopSvcLogger) AppendService(uint16, []byte) {}
