// Package clonos is a Go reproduction of Clonos (Silvestre et al., SIGMOD
// 2021): a streaming dataflow engine with coordinated checkpoints whose
// fault tolerance layer combines in-flight record logs, causal logging of
// nondeterministic events, and passive standby tasks to deliver local
// recovery with exactly-once guarantees — even for operators that call
// external services, use processing-time windows, timers, or random
// numbers.
//
// A minimal job:
//
//	topic := clonos.NewTopic("events", 2)
//	sink := clonos.NewSinkTopic(true)
//	g := clonos.NewJobGraph()
//	g.FromTopic("src", 2, topic).
//		Map("double", func(ctx clonos.Context, e clonos.Element) (any, bool, error) {
//			return e.Value.(int64) * 2, true, nil
//		}).
//		ToSink("out", sink)
//	jb, _ := clonos.Start(g, clonos.DefaultConfig())
//	defer jb.Stop()
//
// Fault tolerance is configured through Config: Mode selects Clonos local
// recovery or the global-rollback baseline; Guarantee selects
// exactly-once, at-least-once, or at-most-once (§5.4 of the paper); DSD
// sets the determinant sharing depth; Standby enables hot standby tasks.
package clonos

import (
	"time"

	"clonos/internal/codec"
	"clonos/internal/job"
	"clonos/internal/kafkasim"
	"clonos/internal/metrics"
	"clonos/internal/operator"
	"clonos/internal/services"
	"clonos/internal/statestore"
	"clonos/internal/types"
)

// Re-exported core types. The engine lives in internal packages; these
// aliases are the public surface.
type (
	// Config is the runtime configuration (fault-tolerance mode,
	// guarantee level, checkpoint interval, buffer sizes, ...).
	Config = job.Config
	// Element is one stream element.
	Element = types.Element
	// Context is the runtime context handed to user functions.
	Context = operator.Context
	// Operator is the low-level operator interface for custom logic.
	Operator = operator.Operator
	// TaskID identifies one parallel task instance.
	TaskID = types.TaskID
	// Topic is a partitioned, replayable input log (simulated Kafka).
	Topic = kafkasim.Topic
	// SinkTopic is the measured output topic.
	SinkTopic = kafkasim.SinkTopic
	// SinkRecord is one delivered output record.
	SinkRecord = kafkasim.SinkRecord
	// ExternalWorld simulates external services reachable from UDFs.
	ExternalWorld = services.ExternalWorld
	// Event is a runtime lifecycle event (failures, recoveries, ...).
	Event = job.Event
	// WindowSpec configures window operators.
	WindowSpec = operator.WindowSpec
	// AggregateFn is an incremental window aggregate.
	AggregateFn = operator.AggregateFn
	// Codec serializes record payloads on an edge or in snapshots.
	Codec = codec.Codec
	// Int64Codec is the zig-zag varint codec for int64 payloads.
	Int64Codec = codec.Int64Codec
	// Float64Codec is the fixed 8-byte codec for float64 payloads.
	Float64Codec = codec.Float64Codec
	// StringCodec is the raw-bytes codec for string payloads.
	StringCodec = codec.StringCodec
	// BytesCodec passes []byte payloads through unchanged.
	BytesCodec = codec.BytesCodec
)

// Fault-tolerance modes.
const (
	// ModeClonos enables in-flight logging, causal logging and local
	// recovery.
	ModeClonos = job.ModeClonos
	// ModeGlobal is the vanilla-Flink baseline: global rollback.
	ModeGlobal = job.ModeGlobal
)

// Standby allocation strategies (§6.3).
const (
	AllocSameAsRunning = job.AllocSameAsRunning
	AllocAntiAffinity  = job.AllocAntiAffinity
	AllocCoLocated     = job.AllocCoLocated
)

// Guarantee levels (§5.4).
const (
	ExactlyOnce = job.ExactlyOnce
	AtLeastOnce = job.AtLeastOnce
	AtMostOnce  = job.AtMostOnce
)

// Window kinds.
const (
	TumblingEventTime      = operator.TumblingEventTime
	SlidingEventTime       = operator.SlidingEventTime
	SessionEventTime       = operator.SessionEventTime
	TumblingProcessingTime = operator.TumblingProcessingTime
)

// DefaultConfig returns a configuration scaled for in-process use.
func DefaultConfig() Config { return job.DefaultConfig() }

// NewTopic creates an input topic with n partitions.
func NewTopic(name string, n int) *Topic { return kafkasim.NewTopic(name, n) }

// NewSinkTopic creates an output topic; dedup enables the idempotent
// exactly-once sink.
func NewSinkTopic(dedup bool) *SinkTopic { return kafkasim.NewSinkTopic(dedup) }

// NewExternalWorld creates a simulated external service world.
func NewExternalWorld() *ExternalWorld { return services.NewExternalWorld() }

// TopicRecord builds one input record for Topic.Append.
func TopicRecord(key uint64, ts int64, v any) kafkasim.Record {
	return kafkasim.Record{Key: key, Ts: ts, Value: v}
}

// RegisterStateType registers a concrete type used as operator state or
// as a record value crossing an auto-codec edge, for the reflective gob
// fallback. Pair with RegisterCodec to keep such values off the
// reflection path entirely.
func RegisterStateType(v any) { statestore.Register(v) }

// RegisterCodec binds a hand-written codec to sample's concrete type.
// Values of that type then encode reflection-free everywhere the engine
// serializes them: auto-selected edges, state snapshots and deltas, and
// audit fingerprints. Registration is process-wide and must happen
// before any job starts (init functions are the natural place).
func RegisterCodec(sample any, c Codec) { codec.RegisterType(sample, c) }

// Count returns the record-count window aggregate.
func Count() AggregateFn { return operator.Count() }

// SumFloat returns a summing window aggregate over extract(value).
func SumFloat(extract func(v any) float64) AggregateFn { return operator.SumFloat(extract) }

// AvgFloat returns an averaging window aggregate over extract(value).
func AvgFloat(extract func(v any) float64) AggregateFn { return operator.AvgFloat(extract) }

// MaxBy returns an arg-max window aggregate by score.
func MaxBy(score func(v any) float64) AggregateFn { return operator.MaxBy(score) }

// Job is a running dataflow.
type Job struct {
	rt *job.Runtime
}

// Start validates the graph and launches the job.
func Start(g *JobGraph, cfg Config) (*Job, error) {
	rt, err := job.NewRuntime(g.g, cfg)
	if err != nil {
		return nil, err
	}
	if err := rt.Start(); err != nil {
		return nil, err
	}
	return &Job{rt: rt}, nil
}

// Stop tears the job down.
func (j *Job) Stop() { j.rt.Stop() }

// WaitFinished blocks until every task reaches end-of-stream or the
// timeout elapses; it reports whether the job finished.
func (j *Job) WaitFinished(timeout time.Duration) bool { return j.rt.WaitFinished(timeout) }

// InjectFailure crashes one task; the failure detector drives recovery.
func (j *Job) InjectFailure(id TaskID) error { return j.rt.InjectFailure(id) }

// InjectNodeFailure crashes every task (and destroys any standby) on a
// simulated cluster node; requires Config.Nodes > 0.
func (j *Job) InjectNodeFailure(node int) error { return j.rt.InjectNodeFailure(node) }

// NodeOf reports the simulated node hosting a task (-1 when node
// simulation is disabled).
func (j *Job) NodeOf(id TaskID) int { return j.rt.NodeOf(id) }

// LatestCompletedCheckpoint reports the newest completed checkpoint.
func (j *Job) LatestCompletedCheckpoint() uint64 {
	return uint64(j.rt.LatestCompletedCheckpoint())
}

// Events returns recorded runtime lifecycle events.
func (j *Job) Events() []Event { return j.rt.Events() }

// Errors returns task errors reported so far.
func (j *Job) Errors() []error { return j.rt.Errors() }

// Runtime exposes the underlying runtime for advanced use (experiments).
func (j *Job) Runtime() *job.Runtime { return j.rt }

// NewSampler builds a 3 Hz throughput sampler over a sink topic.
func NewSampler(sink *SinkTopic) *metrics.Sampler {
	return metrics.NewSampler(sink, 0)
}
