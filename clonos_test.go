package clonos

import (
	"testing"
	"time"
)

func feedInts(topic *Topic, n int, keys uint64) {
	for i := 0; i < n; i++ {
		topic.Append(TopicRecord(uint64(i)%keys, int64(i), int64(i)))
	}
	topic.Close()
}

func TestPublicAPILinearJob(t *testing.T) {
	topic := NewTopic("in", 2)
	sink := NewSinkTopic(true)
	g := NewJobGraph()
	g.FromTopic("src", 2, topic).
		Map("double", func(ctx Context, e Element) (any, bool, error) {
			return e.Value.(int64) * 2, true, nil
		}).
		ToSink("out", sink)

	feedInts(topic, 300, 7)
	jb, err := Start(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer jb.Stop()
	if !jb.WaitFinished(30 * time.Second) {
		t.Fatalf("did not finish: %v", jb.Errors())
	}
	if sink.Len() != 300 {
		t.Fatalf("sink has %d records", sink.Len())
	}
	var sum int64
	for _, r := range sink.All() {
		sum += r.Value.(int64)
	}
	if want := int64(300*299) / 2 * 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestPublicAPIKeyByReduce(t *testing.T) {
	topic := NewTopic("in", 1)
	sink := NewSinkTopic(true)
	g := NewJobGraph()
	g.FromTopic("src", 1, topic).
		KeyBy(func(v any) uint64 { return uint64(v.(int64) % 3) }).
		Reduce("sum", func(ctx Context, acc any, e Element) (any, error) {
			s, _ := acc.(int64)
			return s + e.Value.(int64), nil
		}).
		ToSink("out", sink)

	feedInts(topic, 99, 5)
	jb, err := Start(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer jb.Stop()
	if !jb.WaitFinished(30 * time.Second) {
		t.Fatalf("did not finish: %v", jb.Errors())
	}
	last := map[uint64]int64{}
	for _, r := range sink.All() {
		last[r.Key] = r.Value.(int64)
	}
	want := map[uint64]int64{}
	for i := int64(0); i < 99; i++ {
		want[uint64(i%3)] += i
	}
	for k, w := range want {
		if last[k] != w {
			t.Fatalf("key %d = %d, want %d", k, last[k], w)
		}
	}
}

func TestPublicAPIWindow(t *testing.T) {
	topic := NewTopic("in", 1)
	sink := NewSinkTopic(true)
	g := NewJobGraph()
	g.FromTopic("src", 1, topic, SourceOptions{WatermarkEvery: 10}).
		KeyBy(func(v any) uint64 { return 1 }).
		Window("count", WindowSpec{Kind: TumblingEventTime, Size: 50}, Count()).
		ToSink("out", sink)

	feedInts(topic, 500, 1)
	jb, err := Start(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer jb.Stop()
	if !jb.WaitFinished(30 * time.Second) {
		t.Fatalf("did not finish: %v", jb.Errors())
	}
	var total int64
	for _, r := range sink.All() {
		total += r.Value.(int64)
	}
	if total != 500 {
		t.Fatalf("window counts sum to %d", total)
	}
}

func TestPublicAPIJoin(t *testing.T) {
	topic := NewTopic("in", 1)
	sink := NewSinkTopic(true)
	g := NewJobGraph()
	src := g.FromTopic("src", 1, topic)
	evens := src.Filter("evens", func(ctx Context, e Element) (bool, error) {
		return e.Value.(int64)%2 == 0, nil
	}).KeyBy(func(v any) uint64 { return uint64(v.(int64) / 2 % 5) })
	odds := src.Filter("odds", func(ctx Context, e Element) (bool, error) {
		return e.Value.(int64)%2 == 1, nil
	}).KeyBy(func(v any) uint64 { return uint64(v.(int64) / 2 % 5) })
	evens.JoinWith("join", odds, func(l, r any) any {
		return l.(int64) + r.(int64)
	}).ToSink("out", sink)
	if g.Err() != nil {
		t.Fatal(g.Err())
	}

	feedInts(topic, 100, 1)
	jb, err := Start(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer jb.Stop()
	if !jb.WaitFinished(30 * time.Second) {
		t.Fatalf("did not finish: %v", jb.Errors())
	}
	if sink.Len() == 0 {
		t.Fatal("join produced nothing")
	}
}

func TestPublicAPIFailureInjection(t *testing.T) {
	topic := NewTopic("in", 1)
	sink := NewSinkTopic(true)
	g := NewJobGraph()
	sum := g.FromTopic("src", 1, topic).
		KeyBy(func(v any) uint64 { return uint64(v.(int64) % 4) }).
		Reduce("sum", func(ctx Context, acc any, e Element) (any, error) {
			s, _ := acc.(int64)
			return s + e.Value.(int64), nil
		})
	sum.ToSink("out", sink)

	jb, err := Start(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer jb.Stop()

	const n = 4000
	go func() {
		for i := 0; i < n; i++ {
			topic.Append(TopicRecord(uint64(i)%4, int64(i), int64(i)))
			time.Sleep(100 * time.Microsecond)
		}
		topic.Close()
	}()
	time.Sleep(250 * time.Millisecond)
	if err := jb.InjectFailure(sum.Task(0)); err != nil {
		t.Fatal(err)
	}
	if !jb.WaitFinished(60 * time.Second) {
		t.Fatalf("did not finish: %v", jb.Errors())
	}
	for _, e := range jb.Errors() {
		t.Errorf("task error: %v", e)
	}
	last := map[uint64]int64{}
	for _, r := range sink.All() {
		last[r.Key] = r.Value.(int64)
	}
	want := map[uint64]int64{}
	for i := int64(0); i < n; i++ {
		want[uint64(i%4)] += i
	}
	for k, w := range want {
		if last[k] != w {
			t.Errorf("key %d = %d, want %d (exactly-once violated)", k, last[k], w)
		}
	}
	// The failure path must be visible in the events.
	sawActivation := false
	for _, ev := range jb.Events() {
		if ev.Kind == "standby-activated" {
			sawActivation = true
		}
	}
	if !sawActivation {
		t.Error("no standby activation recorded")
	}
}

func TestGraphErrJoinAcrossGraphs(t *testing.T) {
	g1 := NewJobGraph()
	g2 := NewJobGraph()
	a := g1.FromTopic("a", 1, NewTopic("a", 1))
	bStream := g2.FromTopic("b", 1, NewTopic("b", 1))
	a.JoinWith("bad", bStream, func(l, r any) any { return nil })
	if g1.Err() == nil {
		t.Fatal("cross-graph join accepted")
	}
}

func TestPublicAPIExactlyOnceOutputSink(t *testing.T) {
	world := NewExternalWorld()
	topic := NewTopic("in", 1)
	sink := NewSinkTopic(true)
	g := NewJobGraph()
	g.FromTopic("src", 1, topic).
		Map("stamp", func(ctx Context, e Element) (any, bool, error) {
			resp, err := ctx.Services().HTTPGet("svc/x")
			if err != nil {
				return nil, false, err
			}
			return len(resp), true, nil
		}).
		ToSinkExactlyOnce("out", sink)

	cfg := DefaultConfig()
	cfg.World = world
	jb, err := Start(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer jb.Stop()

	const n = 2000
	go func() {
		for i := 0; i < n; i++ {
			topic.Append(TopicRecord(uint64(i), int64(i), int64(i)))
			time.Sleep(150 * time.Microsecond)
		}
		topic.Close()
	}()
	time.Sleep(200 * time.Millisecond)
	if err := jb.InjectFailure(TaskID{Vertex: 1, Subtask: 0}); err != nil {
		t.Fatal(err)
	}
	if !jb.WaitFinished(60 * time.Second) {
		t.Fatalf("did not finish: %v", jb.Errors())
	}
	for _, e := range jb.Errors() {
		t.Errorf("task error: %v", e)
	}
	if sink.Len() != n {
		t.Fatalf("published %d, want %d", sink.Len(), n)
	}
	if sink.StoredDeltaCount() == 0 {
		t.Fatal("no determinants stored at the sink topic")
	}
	if world.Calls() < n || world.Calls() > n+500 {
		t.Fatalf("external calls = %d", world.Calls())
	}
}
