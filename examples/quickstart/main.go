// Quickstart: a keyed word-count over a replayable topic with a failure
// injected mid-run. Clonos recovers the failed counting task locally from
// its standby, and the final counts are exactly-once.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"clonos"
)

func main() {
	topic := clonos.NewTopic("sentences", 2)
	sink := clonos.NewSinkTopic(true)

	// A fluent pipeline: source -> tokenize -> keyed count -> sink.
	g := clonos.NewJobGraph()
	words := g.FromTopic("sentences", 2, topic).
		FlatMap("tokenize", func(ctx clonos.Context, e clonos.Element, emit func(uint64, int64, any)) error {
			for _, w := range strings.Fields(e.Value.(string)) {
				emit(hash(w), e.Timestamp, w)
			}
			return nil
		}).
		KeyBy(func(v any) uint64 { return hash(v.(string)) })
	counts := words.Reduce("count", func(ctx clonos.Context, acc any, e clonos.Element) (any, error) {
		n, _ := acc.(int64)
		return n + 1, nil
	})
	counts.ToSink("out", sink)

	cfg := clonos.DefaultConfig()
	jb, err := clonos.Start(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer jb.Stop()

	// Feed sentences.
	sentences := []string{
		"the quick brown fox",
		"jumps over the lazy dog",
		"the dog barks",
		"the fox runs",
	}
	go func() {
		for i := 0; i < 2000; i++ {
			topic.Append(clonos.TopicRecord(uint64(i), time.Now().UnixMilli(), sentences[i%len(sentences)]))
			time.Sleep(500 * time.Microsecond)
		}
		topic.Close()
	}()

	// Kill the counting operator mid-run; the standby takes over.
	time.Sleep(400 * time.Millisecond)
	victim := counts.Task(0)
	fmt.Printf("injecting failure into %v...\n", victim)
	if err := jb.InjectFailure(victim); err != nil {
		log.Fatal(err)
	}

	if !jb.WaitFinished(60 * time.Second) {
		log.Fatalf("job did not finish: %v", jb.Errors())
	}
	for _, e := range jb.Errors() {
		log.Fatalf("task error: %v", e)
	}

	// Reduce emits a running count per word; the last record per key is
	// the exactly-once total.
	latest := map[uint64]int64{}
	keyWord := map[uint64]string{}
	for _, rec := range sink.All() {
		latest[rec.Key] = rec.Value.(int64)
	}
	for _, s := range sentences {
		for _, w := range strings.Fields(s) {
			keyWord[hash(w)] = w
		}
	}
	fmt.Println("final word counts (exactly-once despite the failure):")
	total := int64(0)
	for k, n := range latest {
		fmt.Printf("  %-6s %d\n", keyWord[k], n)
		total += n
	}
	want := int64(0)
	for i := 0; i < 2000; i++ {
		want += int64(len(strings.Fields(sentences[i%len(sentences)])))
	}
	fmt.Printf("total words counted: %d (expected %d)\n", total, want)
	if total != want {
		log.Fatal("exactly-once violated")
	}
	fmt.Println("events:")
	for _, ev := range jb.Events() {
		if ev.Kind == "failure-detected" || ev.Kind == "standby-activated" || ev.Kind == "task-live" {
			fmt.Printf("  %s %v\n", ev.Kind, ev.Task)
		}
	}
}

// hash is a tiny FNV-1a for demo keys.
func hash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
