// Exactly-once output (§5.5): an audit pipeline whose SINK is
// nondeterministic — it stamps every published record with a response
// from an external compliance service. A sink has no downstream tasks to
// replicate its determinants to, so plain Clonos would recover it
// divergently; with ToSinkExactlyOnce, the determinants travel with the
// published records, the output topic stores them, and the failed sink
// recovers causally guided through the topic itself — republished records
// are identical and already-observed service responses are never
// re-requested.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"clonos"
)

func main() {
	world := clonos.NewExternalWorld()
	topic := clonos.NewTopic("ledger", 1)
	sink := clonos.NewSinkTopic(true)

	g := clonos.NewJobGraph()
	stamped := g.FromTopic("ledger", 1, topic).
		Map("stamp", func(ctx clonos.Context, e clonos.Element) (any, bool, error) {
			resp, err := ctx.Services().HTTPGet("compliance/check")
			if err != nil {
				return nil, false, err
			}
			caseID := binary.BigEndian.Uint64(resp[len(resp)-8:])
			return fmt.Sprintf("entry-%d:case-%d", e.Value.(int64), caseID), true, nil
		})
	stamped.ToSinkExactlyOnce("published", sink)

	cfg := clonos.DefaultConfig()
	cfg.World = world
	jb, err := clonos.Start(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer jb.Stop()

	const n = 4000
	go func() {
		for i := 0; i < n; i++ {
			topic.Append(clonos.TopicRecord(uint64(i), time.Now().UnixMilli(), int64(i)))
			time.Sleep(200 * time.Microsecond)
		}
		topic.Close()
	}()

	// The sink vertex is the stamping chain's tail: kill it mid-run.
	time.Sleep(400 * time.Millisecond)
	fmt.Println("killing the publishing sink mid-run...")
	if err := jb.InjectFailure(clonos.TaskID{Vertex: 1, Subtask: 0}); err != nil {
		log.Fatal(err)
	}

	if !jb.WaitFinished(60 * time.Second) {
		log.Fatalf("job did not finish: %v", jb.Errors())
	}
	for _, e := range jb.Errors() {
		log.Fatalf("task error: %v", e)
	}

	recs := sink.All()
	seen := map[string]bool{}
	for _, r := range recs {
		if seen[r.Value.(string)] {
			log.Fatalf("record %q published twice", r.Value)
		}
		seen[r.Value.(string)] = true
	}
	fmt.Printf("published: %d unique records (expected %d)\n", len(recs), n)
	fmt.Printf("compliance-service calls: %d (no observed response re-requested)\n", world.Calls())
	if len(recs) != n || world.Calls() < n || world.Calls() > n+500 {
		log.Fatal("exactly-once output violated")
	}
	fmt.Println("OK: nondeterministic sink recovered exactly-once through the output system")
}
