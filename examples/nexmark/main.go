// NEXMark runner: execute any of the benchmark queries on the engine,
// optionally injecting a failure mid-run, and report throughput, latency
// and recovery behaviour — a miniature of the paper's §7.4 experiments.
//
// Usage:
//
//	go run ./examples/nexmark -query Q8 -rate 20000 -duration 8s -fail
package main

import (
	"flag"
	"fmt"
	"log"

	"time"

	"clonos"
	"clonos/internal/harness"
	"clonos/internal/job"
	"clonos/internal/kafkasim"
	"clonos/internal/metrics"
	"clonos/internal/nexmark"
	"clonos/internal/types"
)

func main() {
	query := flag.String("query", "Q3", "NEXMark query (Q1-Q8, Q11-Q14)")
	rate := flag.Int("rate", 20000, "events/second")
	duration := flag.Duration("duration", 8*time.Second, "run duration")
	parallelism := flag.Int("parallelism", 2, "operator parallelism")
	fail := flag.Bool("fail", false, "inject a failure at 40% of the run")
	mode := flag.String("mode", "clonos", "clonos | global")
	flag.Parse()

	cfg := clonos.DefaultConfig()
	if *mode == "global" {
		cfg.Mode = clonos.ModeGlobal
		cfg.Standby = false
	}
	cfg.World = clonos.NewExternalWorld()

	var failures []harness.FailurePlan
	if *fail {
		failures = append(failures, harness.FailurePlan{
			After: time.Duration(float64(*duration) * 0.4),
			Task:  types.TaskID{Vertex: 1, Subtask: 0},
		})
	}

	res, err := harness.Run(harness.RunSpec{
		Name:      *query,
		Cfg:       cfg,
		SinkDedup: true,
		NewTopic:  func() *kafkasim.Topic { return kafkasim.NewTopic("nexmark", *parallelism*2) },
		Build: func(topic *kafkasim.Topic, sink *kafkasim.SinkTopic) (*job.Graph, error) {
			return nexmark.Build(*query, topic, sink, nexmark.DefaultQueryConfig(*parallelism))
		},
		StartDriver: func(topic *kafkasim.Topic) func() {
			d := nexmark.NewDriver(topic, nexmark.DefaultGeneratorConfig(42), *rate, 0)
			d.Start()
			return d.Stop
		},
		Duration: *duration,
		Failures: failures,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range res.Errors {
		log.Fatalf("task error: %v", e)
	}

	p50, p99 := harness.LatencyPercentiles(res.Latency)
	fmt.Printf("%s (%s): %d output records, steady throughput %.0f/s, latency p50=%dms p99=%dms\n",
		*query, *mode, res.SinkCount, harness.SteadyThroughput(res.Samples, 0.3), p50, p99)
	if *fail && len(res.FailTimes) > 0 {
		if d, ok := metrics.RecoveryTime(res.Latency, res.FailTimes[0].UnixMilli(), 0.10, 500); ok {
			fmt.Printf("recovery time (latency back within 10%%): %s\n", d.Round(10*time.Millisecond))
		} else {
			fmt.Println("latency did not settle within the run")
		}
		for _, ev := range res.Events {
			switch ev.Kind {
			case job.EventFailureDetected, job.EventStandbyActivated, job.EventGlobalRestart:
				fmt.Printf("  event %-18s %v %s\n", ev.Kind, ev.Task, ev.Info)
			}
		}
	}
}
