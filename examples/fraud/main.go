// Fraud detection: the paper's motivating class of workload — an
// event-driven pipeline whose scoring UDF is genuinely nondeterministic:
// it queries an external risk service (whose answers change per call),
// reads the wall clock, and draws random numbers for sampled auditing.
//
// A failure is injected into the scoring operator mid-run. Because Clonos
// causally logs every nondeterministic event and replays it during
// recovery, the external service is never re-queried, the regenerated
// alerts are byte-identical to what the failed task already emitted, and
// every transaction is scored exactly once.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"clonos"
)

// Transaction is one card payment.
type Transaction struct {
	ID     uint64
	Card   uint64
	Amount int64
}

// Alert is one scored transaction.
type Alert struct {
	Txn       uint64
	RiskScore uint64 // version counter from the external risk service
	ScoredAt  int64  // wall clock read through the Timestamp service
	Audited   bool   // random sampling through the RNG service
}

func main() {
	clonos.RegisterStateType(Transaction{})
	clonos.RegisterStateType(Alert{})

	world := clonos.NewExternalWorld()
	topic := clonos.NewTopic("txns", 1)
	sink := clonos.NewSinkTopic(true)

	g := clonos.NewJobGraph()
	scored := g.FromTopic("txns", 1, topic).
		Map("score", func(ctx clonos.Context, e clonos.Element) (any, bool, error) {
			txn := e.Value.(Transaction)
			// External call: the risk service's answer changes on every
			// call — re-execution without causal logging would diverge.
			resp, err := ctx.Services().HTTPGet(fmt.Sprintf("risk/%d", txn.Card))
			if err != nil {
				return nil, false, err
			}
			score := binary.BigEndian.Uint64(resp[len(resp)-8:])
			now, err := ctx.Services().CurrentTimeMillis()
			if err != nil {
				return nil, false, err
			}
			r, err := ctx.Services().RandomInt63()
			if err != nil {
				return nil, false, err
			}
			return Alert{Txn: txn.ID, RiskScore: score, ScoredAt: now, Audited: r%100 < 5}, true, nil
		})
	scored.ToSink("alerts", sink)

	cfg := clonos.DefaultConfig()
	cfg.World = world
	jb, err := clonos.Start(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer jb.Stop()

	const n = 5000
	go func() {
		for i := uint64(0); i < n; i++ {
			topic.Append(clonos.TopicRecord(i, time.Now().UnixMilli(), Transaction{ID: i, Card: i % 50, Amount: int64(i)}))
			time.Sleep(200 * time.Microsecond)
		}
		topic.Close()
	}()

	time.Sleep(400 * time.Millisecond)
	fmt.Println("killing the scoring operator mid-run...")
	if err := jb.InjectFailure(scored.Task(0)); err != nil {
		log.Fatal(err)
	}

	if !jb.WaitFinished(60 * time.Second) {
		log.Fatalf("job did not finish: %v", jb.Errors())
	}
	for _, e := range jb.Errors() {
		log.Fatalf("task error: %v", e)
	}

	alerts := sink.All()
	fmt.Printf("alerts delivered: %d (expected %d)\n", len(alerts), n)
	fmt.Printf("external risk-service calls: %d (for %d transactions; replayed calls are never re-issued,\n"+
		"  only the failed task's unobserved tail — past its last sent buffer — re-executes)\n", world.Calls(), n)
	if len(alerts) != n || world.Calls() < n || world.Calls() > n+500 {
		log.Fatal("exactly-once violated")
	}
	audited := 0
	for _, a := range alerts {
		if a.Value.(Alert).Audited {
			audited++
		}
	}
	fmt.Printf("randomly audited: %d (~5%% of %d, reproduced exactly across the failure)\n", audited, n)
	fmt.Println("OK: nondeterministic pipeline recovered with exactly-once semantics")
}
